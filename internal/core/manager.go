package core

import (
	"github.com/bsc-repro/ompss/internal/dmgr"
	"github.com/bsc-repro/ompss/internal/gasnet"
	"github.com/bsc-repro/ompss/internal/memspace"
	"github.com/bsc-repro/ompss/internal/sim"
	"github.com/bsc-repro/ompss/internal/task"
)

// Distributed managers (DESIGN.md §13). The centralized runtime funnels
// every dependence lookup and every coherence-directory operation through
// the master — the classic single-manager bottleneck. When
// Config.ManagerShards > 1 the directory and the dependence conflict map
// are partitioned across N manager shards by block ownership
// (dmgr.Map), each shard hosted on a cluster node, and slave-to-slave
// transfers become the default data path with the owning shard only
// brokering metadata.
//
// The split is "state-immediate, cost-deferred": bookkeeping transitions
// are applied exactly as in the centralized runtime (which is why results
// stay checksum-exact between centralized and sharded runs, and why
// shards=1 stays bit-identical), while Config.ManagerOpCost arms a
// virtual-time service model — each shard an FCFS serial queue — that
// makes the caller of a blocking query sleep until the owning shard has
// served it. One centralized queue saturates; N queues scale. That
// difference is what `ompss-bench -experiment weakscale` measures.

// Per-operation weights of the service model, in shard-queue operations
// per decomposed span.
const (
	// opsSubmitPerSpan: one conflict lookup plus one bookkeeping update
	// per fragment span of each dependence clause at submission.
	opsSubmitPerSpan = 2
	// opsProducedPerSpan: the version bump + holder reset (and producer
	// log append) when a task's output is produced.
	opsProducedPerSpan = 1
	// opsStagePerSpan: the Missing + Holders queries the transfer planner
	// issues per region staged to a node.
	opsStagePerSpan = 2
	// opsRebuildPerFrag: per-fragment cost of rebuilding a failed
	// manager's directory slice on its new host.
	opsRebuildPerFrag = 1
)

// amDirOp is the control active message that carries a routed directory
// operation to a remote shard host in sharded mode. The state transition
// itself is applied at the master image (state-immediate); the message
// makes the metadata routing visible on the simulated fabric and is
// counted by the shard host. Best-effort like the heartbeat: a lost
// datagram loses nothing but a counter increment.
const amDirOp = "dirop"

// directory is the coherence-directory surface the runtime drives.
// Satisfied by both coherence.Directory (per-node images, centralized
// master) and dmgr.Directory (the sharded master).
type directory interface {
	TrackProducers(memspace.Location)
	RecordProducer(memspace.Region, *task.Task)
	Producers(memspace.Region) []*task.Task
	Init(memspace.Region, memspace.Location)
	Produced(memspace.Region, memspace.Location)
	AddHolder(memspace.Region, memspace.Location)
	PurgeNode(int) []memspace.Region
	Rehome(memspace.Region)
	DropHolder(memspace.Region, memspace.Location)
	IsHolder(memspace.Region, memspace.Location) bool
	Known(memspace.Region) bool
	Missing(memspace.Region, memspace.Location) []memspace.Region
	Held(memspace.Region, memspace.Location) []memspace.Region
	HeldBytes(memspace.Region, memspace.Location) uint64
	Version(memspace.Region) int
	Holders(memspace.Region) []memspace.Location
	Regions() []memspace.Region
	Fragments() int
}

// mgrState is the distributed-manager state. Nil unless ManagerShards > 1
// or ManagerOpCost > 0; every sharded/charging path is gated on it, which
// keeps the default runtime bit-identical to before.
type mgrState struct {
	dmap    *dmgr.Map
	model   *dmgr.Model
	sharded bool
	// pdir is the master's partitioned directory (nil unless sharded).
	pdir *dmgr.Directory

	// Reusable span scratch of the (serial) charge paths that run on the
	// submission thread; concurrent paths (staging procs, handlers)
	// decompose into their own buffers.
	spanbuf []dmgr.Span
	opsbuf  []int
}

// newMgrState arms the manager layer.
func newMgrState(cfg Config, met *rtMetrics) *mgrState {
	shards := cfg.ManagerShards
	if shards < 1 {
		shards = 1
	}
	nodes := len(cfg.Cluster.Nodes)
	dmap := dmgr.NewMap(shards, nodes)
	// A routed metadata request pays the one-way wire latency plus the
	// sender-side message overhead per hop.
	hop := cfg.Cluster.Net.Latency + cfg.Cluster.Net.PerMessageOverhead
	m := &mgrState{
		dmap:    dmap,
		model:   dmgr.NewModel(dmap, cfg.ManagerOpCost, hop, met.mgrOps, met.mgrRemoteOps),
		sharded: shards > 1,
		opsbuf:  make([]int, shards),
	}
	if m.sharded {
		m.pdir = dmgr.NewDirectory(dmap)
	}
	return m
}

// spanOps folds the spans of r into the per-shard op tally.
func (m *mgrState) spanOps(ops []int, r memspace.Region, perSpan int) {
	m.spanbuf = m.dmap.SpansInto(r, m.spanbuf)
	for _, sp := range m.spanbuf {
		ops[sp.Shard] += perSpan
	}
}

// mgrChargeSubmit models the dependence lookups and conflict-map updates
// of one submission batch. The whole batch's operations are tallied per
// owning shard first and each shard serves its share as one FCFS burst —
// shards work in parallel, so the submitting thread sleeps only until the
// slowest shard's reply. With one shard every operation serializes
// through a single queue: exactly the centralized bottleneck.
func (rt *Runtime) mgrChargeSubmit(p *sim.Proc, ts []*task.Task) {
	m := rt.mgr
	if m == nil || m.model.OpCost == 0 || len(ts) == 0 {
		return
	}
	ops := m.opsbuf
	for i := range ops {
		ops[i] = 0
	}
	for _, t := range ts {
		for _, d := range t.Deps {
			if !d.Region.Valid() {
				continue
			}
			m.spanOps(ops, d.Region, opsSubmitPerSpan)
		}
	}
	now := p.Now()
	done := now
	for s, n := range ops {
		if n == 0 {
			continue
		}
		if end := m.model.ServeFrom(now, 0, s, n); end > done {
			done = end
		}
	}
	if done > now {
		p.Sleep(sim.Duration(done - now))
	}
}

// mgrChargeUpdate models an asynchronous directory update (Produced /
// RecordProducer) issued from caller's node: the owning shards' queues
// absorb the work, nobody blocks on the reply.
func (rt *Runtime) mgrChargeUpdate(now sim.Time, caller int, r memspace.Region) {
	m := rt.mgr
	if m == nil || m.model.OpCost == 0 {
		return
	}
	m.spanbuf = m.dmap.SpansInto(r, m.spanbuf)
	for _, sp := range m.spanbuf {
		m.model.ServeFrom(now, caller, sp.Shard, opsProducedPerSpan)
	}
}

// mgrChargeQuery models a blocking coherence query (the transfer
// planner's Missing/Holders round) against r's owning shards; p sleeps
// until the slowest shard has answered. Runs inside per-dispatch procs, so
// it decomposes into a fresh span slice instead of the shared scratch.
func (rt *Runtime) mgrChargeQuery(p *sim.Proc, caller int, r memspace.Region) {
	m := rt.mgr
	if m == nil || m.model.OpCost == 0 {
		return
	}
	now := p.Now()
	done := now
	for _, sp := range m.dmap.Spans(r) {
		if end := m.model.ServeFrom(now, caller, sp.Shard, opsStagePerSpan); end > done {
			done = end
		}
	}
	if done > now {
		p.Sleep(sim.Duration(done - now))
	}
	// Make the routed metadata request visible on the fabric: one control
	// datagram to each remote shard host involved.
	if m.sharded {
		rt.mgrRouteVisible(p, caller, r)
	}
}

// mgrRouteVisible emits one best-effort control datagram from the
// caller's endpoint to each distinct remote shard host owning part of r.
// State was already applied at the master image; the datagrams put the
// metadata routing on the simulated wire where the fabric's counters (and
// traces) can see it.
func (rt *Runtime) mgrRouteVisible(p *sim.Proc, caller int, r memspace.Region) {
	m := rt.mgr
	prev := -1
	for _, sp := range m.dmap.Spans(r) {
		h := m.dmap.Host(sp.Shard)
		if h == caller || h == prev || rt.nodeIsDead(h) {
			continue
		}
		prev = h
		rt.nodes[caller].ep.AMProbe(p, h, amDirOp, nil)
	}
}

// mgrBrokerEndpoint returns the endpoint the push request for frag should
// originate from: the owning shard's host in sharded mode (the manager
// brokering the metadata), the master otherwise. Falls back to the master
// when the shard is hosted there anyway or its host is dead.
func (rt *Runtime) mgrBrokerEndpoint(frag memspace.Region) *nodeRT {
	m := rt.mgr
	if m == nil || !m.sharded {
		return rt.master()
	}
	h := m.dmap.Host(m.dmap.Owner(frag.Addr))
	if h == 0 || rt.nodeIsDead(h) {
		return rt.master()
	}
	rt.met.mgrBrokered.Inc()
	return rt.nodes[h]
}

// mgrFailover rehosts every shard of a dead manager node onto the master
// and charges the rebuild of its directory slice (one op per fragment the
// slice indexes) to the shard's new queue. The slice contents themselves
// are recovered by the producer-chain machinery (recoverLost), which the
// caller runs right after — the directory state never lived only on the
// dead host in the first place (state-immediate), so the rebuild cost is
// time, not data.
func (rt *Runtime) mgrFailover(now sim.Time, dead int) {
	m := rt.mgr
	if m == nil || !m.sharded {
		return
	}
	for _, s := range m.dmap.HostedOn(dead) {
		m.dmap.Reassign(s, 0)
		rt.met.mgrFailovers.Inc()
		if m.pdir != nil {
			m.model.Serve(now, s, opsRebuildPerFrag*m.pdir.ShardFragments(s))
		}
	}
}

// registerDirOpHandlers installs the amDirOp counter handler on every
// node's endpoint (any node can host a shard, and failover can move
// shards). Sharded mode only — the handler set of the default runtime
// stays byte-identical.
func (rt *Runtime) registerDirOpHandlers() {
	for _, n := range rt.nodes {
		n.ep.Register(amDirOp, func(p *sim.Proc, am gasnet.AM) {
			rt.met.mgrDirMsgs.Inc()
		})
	}
}
