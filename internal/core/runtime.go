package core

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"github.com/bsc-repro/ompss/internal/depgraph"
	"github.com/bsc-repro/ompss/internal/dmgr"
	"github.com/bsc-repro/ompss/internal/memspace"
	"github.com/bsc-repro/ompss/internal/metrics"
	"github.com/bsc-repro/ompss/internal/netsim"
	"github.com/bsc-repro/ompss/internal/sched"
	"github.com/bsc-repro/ompss/internal/sim"
	"github.com/bsc-repro/ompss/internal/task"
)

// Runtime is one simulated machine running one OmpSs application.
type Runtime struct {
	e      *sim.Engine
	cfg    Config
	fabric *netsim.Fabric
	nodes  []*nodeRT
	alloc  *memspace.Allocator

	taskSeq  task.ID
	graph    *depgraph.Graph
	pending  int
	idleEvt  *sim.Event
	taskDone map[task.ID]*sim.Event

	// rankMemo caches upward ranks for the HEFT cost model (costmodel.go).
	rankMemo map[task.ID]time.Duration

	// gov is the cluster power governor: always metering, throttling only
	// when Config.PowerCapWatts is set (power.go).
	gov *powerGov

	// releasePlace is the place whose finishing task is currently being
	// retired; the graph's onReady callback reads it to tag released
	// successors for the "dependencies" policy.
	releasePlace int

	// met holds the cross-cutting instruments not owned by a device or
	// interface; they live in cfg.Metrics and are readable mid-run.
	met *rtMetrics

	cl *clusterState
	// clSch is the cluster-level scheduler (nil on single-node machines):
	// place k is node k, place 0 the master node itself.
	clSch sched.Scheduler

	// ft is the fault-injection/fault-tolerance state (nil unless
	// Config.Faults is set; every fault path is gated on it).
	ft *ftState

	// mgr is the distributed-manager state (nil unless ManagerShards > 1
	// or ManagerOpCost > 0; every sharded/charging path is gated on it).
	mgr *mgrState

	// userErr records the first user-program error (malformed dependence
	// clauses, missing combiners). The offending task is not submitted;
	// Run surfaces the error after the engine drains.
	userErr error

	stopped bool
}

// fail records the first user-program error.
func (rt *Runtime) fail(err error) {
	if rt.userErr == nil {
		rt.userErr = err
	}
}

// New builds a runtime over a fresh simulation engine.
func New(cfg Config) *Runtime {
	cfg = cfg.withDefaults()
	e := sim.NewEngine()
	rt := &Runtime{
		e:            e,
		cfg:          cfg,
		alloc:        memspace.NewAllocator(),
		taskDone:     make(map[task.ID]*sim.Event),
		rankMemo:     make(map[task.ID]time.Duration),
		releasePlace: -1,
		met:          newRTMetrics(cfg.Metrics),
	}
	capW := cfg.PowerCapWatts
	if capW <= 0 {
		capW = math.Inf(1)
	}
	rt.gov = newPowerGov(rt, capW)
	rt.fabric = netsim.New(e, cfg.Cluster.Net, len(cfg.Cluster.Nodes))
	for i, spec := range cfg.Cluster.Nodes {
		rt.nodes = append(rt.nodes, newNodeRT(rt, i, spec))
	}
	if len(rt.nodes) > 1 {
		// No work stealing between node queues at the cluster level: the
		// paper's runtime does not steal between slave nodes (III.D.1), and
		// cluster-level steals would migrate a task's data with it.
		rt.clSch = sched.NewWithHooks(cfg.Scheduler, len(rt.nodes), rt.clusterScore, rt.clusterCostModel(), false,
			rt.clusterCanRun, schedHooks(cfg.Metrics, "cluster"))
	}
	if cfg.ManagerShards > 1 || cfg.ManagerOpCost > 0 {
		rt.mgr = newMgrState(cfg, rt.met)
	}
	if rt.mgr != nil && rt.mgr.sharded {
		// The master image's directory becomes the partitioned one; the
		// dependence conflict map splits along the same block ownership.
		rt.master().dir = rt.mgr.pdir
		rt.registerDirOpHandlers()
	}
	if cfg.Faults != nil {
		rt.armFaultTolerance()
	}
	if rt.mgr != nil && rt.mgr.sharded {
		var spanbuf []dmgr.Span
		var partbuf []depgraph.PartSpan
		dmap := rt.mgr.dmap
		rt.graph = depgraph.NewPartitioned(rt.onReady, dmap.Shards(), func(r memspace.Region) []depgraph.PartSpan {
			spanbuf = dmap.SpansInto(r, spanbuf)
			partbuf = partbuf[:0]
			for _, sp := range spanbuf {
				partbuf = append(partbuf, depgraph.PartSpan{R: sp.R, Part: sp.Shard})
			}
			return partbuf
		})
	} else {
		rt.graph = depgraph.New(rt.onReady)
	}
	if cfg.Trace != nil {
		// Mirror every dependence arc into the trace so the critical-path
		// analyzer sees the graph the scheduler saw.
		rt.graph.OnArc = func(pred, succ task.ID) { cfg.Trace.Edge(int64(pred), int64(succ)) }
	}
	rt.idleEvt = sim.NewEvent(e)
	rt.idleEvt.Trigger() // no tasks yet
	return rt
}

// Engine exposes the virtual clock (for tests and harnesses).
func (rt *Runtime) Engine() *sim.Engine { return rt.e }

// Config returns the effective configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

func (rt *Runtime) master() *nodeRT { return rt.nodes[0] }

// onReady fires inside Submit/Finished when a task's dependencies resolve.
// On a cluster the ready task enters the cluster-level pool; on a single
// node it goes straight to the local scheduler.
func (rt *Runtime) onReady(t *task.Task) {
	if rt.clSch != nil {
		if debugPlacement {
			fmt.Printf("[ready] %s#%d scores=%v releasedBy=%d\n", t.Name, t.ID, rt.clusterScore(t), rt.releasePlace)
		}
		rt.clSch.Submit(t, rt.releasePlace)
	} else {
		rt.master().sch.Submit(t, rt.releasePlace)
	}
	rt.master().signalWork()
}

// newTaskID mints the next task id.
func (rt *Runtime) newTaskID() task.ID {
	rt.taskSeq++
	return rt.taskSeq
}

// submit registers t with the dependency graph. A malformed clause set is
// reported as an error; the task is not submitted and the graph stays
// untouched.
func (rt *Runtime) submit(t *task.Task) error {
	// Pre-validate so the idle/pending bookkeeping is only done for tasks
	// that actually enter the graph (onReady fires synchronously inside
	// graph.Submit and relies on it).
	if _, err := depgraph.Normalize(t.Deps); err != nil {
		return fmt.Errorf("%v: %w", t, err)
	}
	if rt.pending == 0 {
		rt.idleEvt = sim.NewEvent(rt.e)
	}
	rt.pending++
	rt.taskDone[t.ID] = sim.NewEvent(rt.e)
	prev := rt.releasePlace
	rt.releasePlace = -1 // submit-time readiness is not a release
	err := rt.graph.Submit(t)
	rt.releasePlace = prev
	if err != nil {
		// Normalize passed but Submit rejected (cross-task reduction
		// overlap): roll the bookkeeping back.
		delete(rt.taskDone, t.ID)
		rt.pending--
		if rt.pending == 0 {
			rt.idleEvt.Trigger()
		}
		return err
	}
	return nil
}

// submitBatch registers a slice of tasks with the dependency graph in one
// batched pass (bounds sorted once, fragments split one pass per shard),
// with per-task outcomes identical to submitting each in turn: a task with
// malformed clauses is skipped (first error recorded), the rest still
// enter the graph.
func (rt *Runtime) submitBatch(ts []*task.Task) error {
	if len(ts) == 0 {
		return nil
	}
	if rt.pending == 0 {
		rt.idleEvt = sim.NewEvent(rt.e)
	}
	for _, t := range ts {
		rt.pending++
		rt.taskDone[t.ID] = sim.NewEvent(rt.e)
	}
	prev := rt.releasePlace
	rt.releasePlace = -1 // submit-time readiness is not a release
	var firstErr error
	rest := ts
	for len(rest) > 0 {
		accepted, err := rt.graph.SubmitBatch(rest)
		if err == nil && accepted == len(rest) {
			break
		}
		// rest[accepted] was rejected: roll back its bookkeeping and
		// continue with the tasks after it, as sequential Submit would.
		bad := rest[accepted]
		delete(rt.taskDone, bad.ID)
		rt.pending--
		if firstErr == nil {
			firstErr = err
		}
		rest = rest[accepted+1:]
	}
	rt.releasePlace = prev
	if rt.pending == 0 {
		rt.idleEvt.Trigger()
	}
	return firstErr
}

// finishTask retires t, releasing dependents. place is the master-level
// place that executed it.
func (rt *Runtime) finishTask(t *task.Task, place int) {
	rt.releasePlace = place
	rt.graph.Finished(t)
	rt.releasePlace = -1
	if ev, ok := rt.taskDone[t.ID]; ok {
		ev.Trigger()
		delete(rt.taskDone, t.ID)
	}
	rt.pending--
	if rt.pending == 0 {
		rt.idleEvt.Trigger()
	}
}

// MainCtx is the handle the application's main function uses: the implicit
// initial task executing on the master image.
type MainCtx struct {
	rt *Runtime
	p  *sim.Proc
}

// TaskDef describes one task instance for Submit.
type TaskDef struct {
	Name        string
	Device      task.Device
	Deps        []task.Dep
	NoCopyDeps  bool // set to detach copy semantics from the dependence list
	ExtraCopies []task.Dep
	// Reductions maps region addresses of Red dependences to combiners.
	Reductions map[uint64]task.Combiner
	Work       task.Work
	// Spawner, when set, runs on the executing node after Work and may
	// submit nested tasks through the *LocalCtx it receives; the task
	// completes when they drain. See internal/core/nested.go.
	Spawner func(interface{})
}

// Run executes main as the application's initial task and drives the
// simulation to completion, returning aggregate statistics. The implicit
// barrier and flush of the end of an OmpSs program are applied after main
// returns.
func (rt *Runtime) Run(main func(mc *MainCtx)) (Stats, error) {
	if rt.stopped {
		panic("core: Runtime cannot be reused")
	}
	if len(rt.nodes) > 1 {
		rt.registerMasterHandlers()
	}
	for _, n := range rt.nodes {
		n.start()
	}
	if len(rt.nodes) > 1 {
		rt.spawnCommThread()
		if rt.ft != nil {
			rt.spawnHeartbeat()
		}
	}
	rt.e.Go("main", func(p *sim.Proc) {
		mc := &MainCtx{rt: rt, p: p}
		main(mc)
		mc.TaskWait() // implicit final barrier + flush
		rt.shutdown(p)
	})
	err := rt.e.Run()
	rt.stopped = true
	if err == nil {
		err = rt.userErr
	}
	return rt.collectStats(), err
}

func (rt *Runtime) shutdown(p *sim.Proc) {
	for _, n := range rt.nodes {
		n.stopping = true
		n.signalWork()
	}
	if len(rt.nodes) > 1 {
		for k := 1; k < len(rt.nodes); k++ {
			if rt.nodeIsDead(k) {
				continue // its workers were stopped above; no peer to notify
			}
			rt.master().ep.AMShort(p, k, amShutdown, nil)
		}
		// Close endpoints after the shutdown notices drain.
		p.Sleep(rt.cfg.Cluster.Net.Latency * 4)
		for _, n := range rt.nodes {
			n.ep.Shutdown()
		}
	}
}

// Now returns the current virtual time.
func (mc *MainCtx) Now() sim.Time { return mc.p.Now() }

// Alloc reserves a program region (logical memory, lazily backed).
func (mc *MainCtx) Alloc(size uint64) memspace.Region {
	return mc.rt.alloc.Alloc(size, 0)
}

// HostBytes exposes the master-host backing bytes of r (nil unless
// Validate). Call only after TaskWait for deterministic contents.
func (mc *MainCtx) HostBytes(r memspace.Region) []byte {
	return mc.rt.master().hostStore.Bytes(r)
}

// InitSeq initializes r sequentially on the master host (charging host
// memory bandwidth) and records the master as its holder. fill may be nil.
func (mc *MainCtx) InitSeq(r memspace.Region, fill func(b []byte)) {
	rt := mc.rt
	spec := rt.master().spec
	mc.p.Sleep(time.Duration(float64(r.Size) / spec.HostMemBandwidth * 1e9))
	if fill != nil && rt.cfg.Validate {
		fill(rt.master().hostStore.Bytes(r))
	}
	rt.master().dir.Init(r, memspace.Host(0))
}

// Submit creates a task from def, wiring its dependences. Mirrors
// "#pragma omp task" with an optional "#pragma omp target device(...)":
// copy_deps semantics are on unless NoCopyDeps is set, as every example in
// the paper uses copy_deps.
func (mc *MainCtx) Submit(def TaskDef) *task.Task {
	t, ok := mc.buildTask(def)
	// Task creation overhead on the master thread.
	mc.p.Sleep(3 * time.Microsecond)
	if !ok {
		return t
	}
	if mc.rt.mgr != nil {
		one := [1]*task.Task{t}
		mc.rt.mgrChargeSubmit(mc.p, one[:])
	}
	if err := mc.rt.submit(t); err != nil {
		mc.rt.fail(err)
	}
	return t
}

// buildTask constructs the task for one definition and validates its
// reduction clauses; ok is false when the task must not be submitted (the
// error has been recorded).
func (mc *MainCtx) buildTask(def TaskDef) (t *task.Task, ok bool) {
	rt := mc.rt
	t = &task.Task{
		ID:          rt.newTaskID(),
		Name:        def.Name,
		Device:      def.Device,
		Deps:        def.Deps,
		CopyDeps:    !def.NoCopyDeps,
		ExtraCopies: def.ExtraCopies,
		Reductions:  def.Reductions,
		Work:        def.Work,
		Spawner:     def.Spawner,
	}
	if t.Work == nil {
		t.Work = task.NoWork{Label: def.Name}
	}
	if t.Device == task.CUDA && rt.cfg.Cluster.TotalGPUs() == 0 {
		panic("core: CUDA task on a machine with no GPUs")
	}
	for _, d := range t.Deps {
		if d.Access == task.Red {
			if _, ok := t.Reductions[d.Region.Addr]; !ok {
				rt.fail(fmt.Errorf("core: %v has a reduction dependence on %v but no combiner (use the Reduction clause)", t, d.Region))
				return t, false
			}
		}
	}
	return t, true
}

// SubmitBatch creates one task per definition and registers them with the
// dependency graph in a single batched pass: clause bounds are sorted
// once and fragments split one pass per shard (depgraph.SubmitBatch),
// instead of paying an index search per clause per task. Semantics are
// identical to calling Submit on each definition in order — same arcs,
// same readiness order, same per-task creation overhead — so it is purely
// a host-side constant-factor win for wide submission bursts.
func (mc *MainCtx) SubmitBatch(defs []TaskDef) []*task.Task {
	out := make([]*task.Task, 0, len(defs))
	valid := make([]*task.Task, 0, len(defs))
	for _, def := range defs {
		t, ok := mc.buildTask(def)
		out = append(out, t)
		if ok {
			valid = append(valid, t)
		}
	}
	// The same per-task creation overhead as sequential submission: batching
	// amortizes the host's real index work, not the modeled creation cost.
	mc.p.Sleep(time.Duration(len(defs)) * 3 * time.Microsecond)
	// With the manager layer armed, the batch's dependence lookups are
	// served by the owning shards — in parallel across shards, serialized
	// within one — before any task enters the graph.
	mc.rt.mgrChargeSubmit(mc.p, valid)
	if err := mc.rt.submitBatch(valid); err != nil {
		mc.rt.fail(err)
	}
	return out
}

// TaskWait blocks until all submitted tasks finish, then flushes: every
// region's current version is made valid on the master host again, exactly
// like the implicit flush of OmpSs taskwait.
func (mc *MainCtx) TaskWait() {
	mc.TaskWaitNoflush()
	mc.rt.flushAll(mc.p)
}

// TaskWaitNoflush blocks until all submitted tasks finish but leaves data
// on the devices (the paper's `taskwait noflush` extension).
func (mc *MainCtx) TaskWaitNoflush() {
	mc.rt.idleEvt.Wait(mc.p)
}

// TaskWaitOn blocks until the data of r has been produced (the `taskwait
// on(...)` extension), then makes r valid on the master host.
func (mc *MainCtx) TaskWaitOn(r memspace.Region) {
	rt := mc.rt
	for {
		w := rt.graph.LastWriter(r)
		if w == nil {
			break
		}
		ev, ok := rt.taskDone[w.ID]
		if !ok {
			break
		}
		ev.Wait(mc.p)
	}
	rt.waitRestore(mc.p, r)
	rt.master().fetchToHost(mc.p, r)
}

// flushAll pulls every region whose current version is off-host back to the
// master host, in parallel.
func (rt *Runtime) flushAll(p *sim.Proc) {
	m := rt.master()
	regions := m.dir.Regions()
	var wait []*sim.Event
	for _, r := range regions {
		if m.dir.IsHolder(r, memspace.Host(0)) && len(m.overlappingRedRegions(r)) == 0 &&
			!rt.restorePending(r) {
			continue
		}
		r := r
		done := sim.NewEvent(rt.e)
		rt.e.Go("flush", func(fp *sim.Proc) {
			// A region under rebuild nominally lists the master as holder
			// (its stale base); wait for the real version first.
			rt.waitRestore(fp, r)
			m.fetchToHost(fp, r)
			done.Trigger()
		})
		wait = append(wait, done)
	}
	for _, ev := range wait {
		ev.Wait(p)
	}
}

func (rt *Runtime) collectStats() Stats {
	s := Stats{
		ElapsedSeconds: rt.e.Now().Seconds(),
		Presends:       int(rt.met.presends.Value()),
		Writebacks:     int(rt.met.writebacks.Value()),
		BytesMtoS:      uint64(rt.met.bytesMtoS.Value()),
		BytesStoS:      uint64(rt.met.bytesStoS.Value()),
		TasksRemote:    int(rt.met.remoteRun.Value()),
	}
	if rt.ft != nil {
		is := rt.ft.inj.Stats()
		s.FaultDropsInjected = is.Drops + is.CrashDrops
		s.NetRetries = int(rt.met.retries.Value())
		s.HeartbeatMisses = int(rt.met.hbMisses.Value())
		s.DeadNodes = int(rt.met.deadNodes.Value())
		s.TasksReexecuted = int(rt.met.reexecs.Value())
		if rt.ft.haveRecovered {
			s.RecoverySeconds = (rt.ft.recoverEnd - rt.ft.recoverStart).Seconds()
		}
	}
	if rt.mgr != nil {
		s.ManagerOps = int(rt.met.mgrOps.Value())
		s.ManagerRemoteOps = int(rt.met.mgrRemoteOps.Value())
		s.ManagerFailovers = int(rt.met.mgrFailovers.Value())
		s.ManagerBrokered = int(rt.met.mgrBrokered.Value())
	}
	// Energy under the two-level power model: the whole cluster idles for
	// the whole run, and each kernel adds its device's busy delta for its
	// duration. Pure arithmetic over already-collected busy counters.
	s.EnergyJoules = rt.cfg.Cluster.IdleWatts() * s.ElapsedSeconds
	s.PowerPeakWatts = rt.gov.PeakWatts()
	s.PowerThrottles = int(rt.gov.throttles.Value())
	elapsed := int64(rt.e.Now())
	for _, n := range rt.nodes {
		nodeTasks := int(n.met.tasksSMP.Value() + n.met.tasksCUDA.Value())
		s.TasksPerNode = append(s.TasksPerNode, nodeTasks)
		s.TasksSMP += int(n.met.tasksSMP.Value())
		s.TasksCUDA += int(n.met.tasksCUDA.Value())
		for g, d := range n.devs {
			ds := d.Stats()
			s.BytesH2D += ds.BytesH2D
			s.BytesD2H += ds.BytesD2H
			s.XfersH2D += ds.XfersH2D
			s.XfersD2H += ds.XfersD2H
			s.KernelBusySeconds += ds.KernelBusy.Seconds()
			s.EnergyJoules += n.spec.GPUs[g].Power.Delta() * ds.KernelBusy.Seconds()
			// Derived per-device time split: busy running kernels, stalled
			// on DMA, idle otherwise (gauges, recomputed at each collect).
			ls := []metrics.Label{metrics.L("node", strconv.Itoa(n.id)), metrics.L("gpu", strconv.Itoa(g))}
			busy, dma := int64(ds.KernelBusy), int64(ds.DMABusy)
			idle := elapsed - busy - dma
			if idle < 0 {
				idle = 0 // overlap mode: engines run concurrently
			}
			rt.cfg.Metrics.Gauge("gpu_stall_ns", ls...).Set(dma)
			rt.cfg.Metrics.Gauge("gpu_idle_ns", ls...).Set(idle)
		}
		for _, c := range n.caches {
			s.CacheHits += c.Hits
			s.CacheMisses += c.Misses
			s.Evictions += c.Evictions
		}
		fs := rt.fabric.Iface(n.id).Stats()
		s.NetBytes += fs.BytesSent
		s.NetMsgs += fs.MsgsSent
		s.NetMsgsDropped += fs.MsgsDropped
	}
	s.Metrics = rt.cfg.Metrics.Snapshot()
	return s
}

func (rt *Runtime) String() string {
	return fmt.Sprintf("Runtime(%s, %d nodes, sched=%s, cache=%s)",
		rt.cfg.Cluster.Name, len(rt.nodes), rt.cfg.Scheduler, rt.cfg.CachePolicy)
}
