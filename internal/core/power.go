package core

import (
	"github.com/bsc-repro/ompss/internal/metrics"
	"github.com/bsc-repro/ompss/internal/sim"
	"github.com/bsc-repro/ompss/internal/trace"
)

// powerGov is the cluster-wide power governor. The model is a two-level
// draw per device: every node and GPU burns its idle watts for the whole
// run (the baseline), and a GPU adds its busy-minus-idle delta while a
// kernel occupies it. With Config.PowerCapWatts set, a kernel launch that
// would push the modeled draw over the cap is deferred — the GPU manager
// sleeps on the headroom event until enough kernels retire — so the cap
// only ever delays work, never changes what runs or what it computes:
// results stay checksum-identical to an uncapped run.
//
// The governor always meters (so Stats reports peak draw and energy for
// every run); it only throttles when capW is finite.
type powerGov struct {
	rt   *Runtime
	capW float64 // +Inf when uncapped
	draw float64 // current modeled draw, watts

	// headroom is re-armed on every release, waking throttled launches.
	headroom *sim.Event

	drawMW    *metrics.Gauge // milliwatts; Max() is the recorded peak
	throttles *metrics.Counter
}

func newPowerGov(rt *Runtime, capW float64) *powerGov {
	pg := &powerGov{
		rt:        rt,
		capW:      capW,
		draw:      rt.cfg.Cluster.IdleWatts(),
		headroom:  sim.NewEvent(rt.e),
		drawMW:    rt.cfg.Metrics.Gauge("power_draw_mw"),
		throttles: rt.cfg.Metrics.Counter("power_throttles_total"),
	}
	pg.drawMW.Set(int64(pg.draw * 1000))
	return pg
}

// acquire blocks until delta watts fit under the cap, then claims them.
// Called by a GPU manager immediately before launching a kernel; the
// matching release runs when the kernel completes.
func (pg *powerGov) acquire(p *sim.Proc, name string, node, dev int, delta float64) {
	if pg.draw+delta > pg.capW+1e-9 {
		pg.throttles.Inc()
		th := pg.rt.cfg.Trace.Begin(trace.Throttle, name, node, dev, p.Now())
		for {
			ev := pg.headroom
			if pg.draw+delta <= pg.capW+1e-9 {
				break
			}
			ev.Wait(p)
		}
		th.End(p.Now())
	}
	pg.draw += delta
	pg.drawMW.Set(int64(pg.draw * 1000))
}

// release returns delta watts to the budget and wakes throttled launches.
func (pg *powerGov) release(delta float64) {
	pg.draw -= delta
	pg.drawMW.Set(int64(pg.draw * 1000))
	ev := pg.headroom
	pg.headroom = sim.NewEvent(pg.rt.e)
	ev.Trigger()
}

// PeakWatts is the high-water modeled draw so far.
func (pg *powerGov) PeakWatts() float64 { return float64(pg.drawMW.Max()) / 1000 }
