// Package core implements the Nanos++ runtime of the paper: the
// architecture-independent layer (dependency graph, scheduler, coherence)
// and the two dependent layers — the GPU architecture (manager thread per
// GPU, transfer/compute overlap, prefetch) and the cluster architecture
// (master and slave images, active messages, communication thread,
// presend, slave-to-slave transfers).
//
// Everything executes on the deterministic virtual clock of internal/sim;
// one Runtime instance owns one simulated machine.
package core

import (
	"fmt"
	"time"

	"github.com/bsc-repro/ompss/internal/coherence"
	"github.com/bsc-repro/ompss/internal/faults"
	"github.com/bsc-repro/ompss/internal/hw"
	"github.com/bsc-repro/ompss/internal/metrics"
	"github.com/bsc-repro/ompss/internal/sched"
	"github.com/bsc-repro/ompss/internal/trace"
)

// Config selects the machine and the runtime options evaluated in the
// paper's experiments.
type Config struct {
	// Cluster is the simulated machine (see internal/hw presets).
	Cluster hw.ClusterSpec

	// Scheduler is the task scheduling policy (bf, dependencies, affinity).
	// Used at every level: the master's cluster-aware scheduler and each
	// node's local scheduler. Default: Dependencies (the runtime default in
	// the paper).
	Scheduler sched.Policy

	// CachePolicy is the software cache write policy (nocache, wt, wb).
	// Default: WriteBack.
	CachePolicy coherence.Policy

	// Overlap enables transfer/compute overlap through CUDA streams
	// (disabled by default in the paper; enabling it adds pinned-staging
	// memcpys).
	Overlap bool

	// Prefetch makes each GPU manager thread request its next task as soon
	// as a kernel is launched and start moving that task's data.
	Prefetch bool

	// CommThreads is the number of communication threads representing the
	// remote nodes at the master ("There is only one communication thread
	// ... Our design allows to have more than one if necessary", Section
	// III.D.1 footnote). Nodes are striped across threads. Default 1.
	CommThreads int

	// Presend is how many extra tasks the communication thread ships to a
	// remote node beyond the one executing, so that their input transfers
	// overlap remote computation. 0 disables presend.
	Presend int

	// SlaveToSlave allows direct data transfers between slave nodes
	// ("StoS"); when false every inter-node transfer is routed through the
	// master ("MtoS").
	SlaveToSlave bool

	// Steal enables work stealing between the affinity scheduler's local
	// queues.
	Steal bool

	// Lookahead is the per-place ready-ahead window of each node's
	// scheduler: when a worker or GPU manager finds its window empty, it
	// claims up to Lookahead ready tasks from the shared pool in one batch
	// and dispatches from the window afterwards, so dispatch does not
	// contend with graph construction on every pop. Claiming binds a task
	// to a place early, which can change schedules; 0 (and 1) disable the
	// window and keep schedules bit-identical to the paper-default runtime.
	Lookahead int

	// NonBlockingCache issues a task's input transfers concurrently and
	// waits once (the paper's non-blocking cache). When false each
	// transfer completes before the next is requested.
	NonBlockingCache bool

	// GPUCacheHeadroom reserves a fraction of device memory for the
	// runtime's own buffers; the software cache manages the rest.
	GPUCacheHeadroom float64

	// KernelJitter is the fractional deterministic variation applied to
	// each task's modeled kernel duration (hashed from the task id). Real
	// kernels never take identical time; without this, a FIFO schedule can
	// stay accidentally aligned with data placement and hide the locality
	// effects the paper measures. Default 0.02 (2%).
	KernelJitter float64

	// EvictionOverhead is the fixed bookkeeping cost of evicting one cache
	// line under memory pressure (pool compaction, cudaFree/cudaMalloc of
	// the backing block). It models why the paper's N-Body prefers the
	// no-cache policy: replacement under pressure costs more than eagerly
	// moving data out and keeping GPU memory free (Section IV.B.1).
	// Defaults to 150µs.
	EvictionOverhead time.Duration

	// Validate carries real bytes through every memory and wire so kernels
	// can execute and results can be checked. Costs host time; benchmarks
	// run cost-only.
	Validate bool

	// Trace, when non-nil, records an execution timeline (task runs, data
	// transfers, network sends) for inspection, Gantt rendering, Paraver or
	// Perfetto export and critical-path analysis. See internal/trace.
	Trace *trace.Recorder

	// Metrics is the registry the runtime's typed instruments live in
	// (counters, queue-depth gauges, virtual-time histograms — see
	// internal/metrics). Nil gets a private registry, so instruments always
	// record; supply one to snapshot mid-run or to aggregate across runs.
	Metrics *metrics.Registry

	// CPUWorkers is the number of SMP worker threads per node; 0 derives
	// it from the node spec (cores minus one per GPU manager minus one
	// runtime thread).
	CPUWorkers int

	// Faults, when non-nil, arms the fault-injection and fault-tolerance
	// machinery: the plan's seeded injector perturbs the fabric, active
	// messages gain ack/timeout/retry, the master runs a heartbeat failure
	// detector, and work lost to dead nodes is re-executed on survivors
	// (see internal/faults). Nil leaves every code path bit-identical to a
	// runtime without the subsystem.
	Faults *faults.Plan

	// ManagerShards partitions the coherence directory and the dependence
	// conflict map across this many manager shards (internal/dmgr), each
	// hosted on a cluster node, with dependence lookups and coherence
	// queries routed to the owning shard and slave-to-slave transfers
	// forced on (the owning manager only brokers metadata). 0 and 1 keep
	// the centralized master bit-identical to before. Sharding never
	// changes results — bookkeeping transitions are computed exactly as in
	// the centralized runtime — it changes *where* (and with ManagerOpCost
	// *when*) directory work happens.
	ManagerShards int

	// PowerCapWatts, when positive, arms the cluster power governor: the
	// modeled draw (every node's and GPU's idle watts, plus each GPU's
	// busy-minus-idle delta while a kernel runs) is never allowed to
	// exceed the cap. A kernel launch that would cross it is deferred
	// until running kernels retire, so the cap trades time for power
	// without changing results. Must leave headroom for at least one
	// kernel: cap >= cluster idle + the largest single-GPU delta. 0 (the
	// default) disables throttling; the governor still meters draw and
	// energy either way.
	PowerCapWatts float64

	// ManagerOpCost, when positive, arms the manager service-time model:
	// every directory/dependence operation occupies the owning shard's
	// FCFS serial queue for this long, blocking queries sleep until their
	// virtual completion (plus network hops when the shard is remote), and
	// asynchronous updates consume queue capacity. This is what makes one
	// centralized manager saturate and N shards scale in the weakscale
	// experiment. 0 (the default) charges nothing and keeps timing
	// bit-identical to before.
	ManagerOpCost time.Duration
}

// withDefaults fills zero values and validates.
func (c Config) withDefaults() Config {
	if c.Scheduler == "" {
		c.Scheduler = sched.Dependencies
	}
	if c.CachePolicy == "" {
		c.CachePolicy = coherence.WriteBack
	}
	if c.GPUCacheHeadroom == 0 {
		c.GPUCacheHeadroom = 0.05
	}
	if c.EvictionOverhead == 0 {
		c.EvictionOverhead = 150 * time.Microsecond
	}
	if c.KernelJitter == 0 {
		c.KernelJitter = 0.02
	}
	if c.KernelJitter < 0 {
		c.KernelJitter = 0
	}
	if c.CommThreads <= 0 {
		c.CommThreads = 1
	}
	if c.Metrics == nil {
		c.Metrics = metrics.New()
	}
	if err := c.Cluster.Validate(); err != nil {
		panic("core: invalid Config.Cluster: " + err.Error())
	}
	if c.PowerCapWatts < 0 {
		panic(fmt.Sprintf("core: negative PowerCapWatts %g", c.PowerCapWatts))
	}
	if c.PowerCapWatts > 0 {
		// The cap must admit at least the hungriest single kernel on top of
		// the idle baseline, or that kernel could never launch.
		var maxDelta float64
		for _, nd := range c.Cluster.Nodes {
			for _, g := range nd.GPUs {
				if d := g.Power.Delta(); d > maxDelta {
					maxDelta = d
				}
			}
		}
		if floor := c.Cluster.IdleWatts() + maxDelta; c.PowerCapWatts < floor {
			panic(fmt.Sprintf("core: PowerCapWatts %g below the feasible floor %g W (cluster idle %g W + largest kernel delta %g W)",
				c.PowerCapWatts, floor, c.Cluster.IdleWatts(), maxDelta))
		}
	}
	if c.Presend < 0 {
		panic(fmt.Sprintf("core: negative Presend %d", c.Presend))
	}
	if c.Lookahead < 0 {
		panic(fmt.Sprintf("core: negative Lookahead %d", c.Lookahead))
	}
	if c.ManagerShards < 0 {
		panic(fmt.Sprintf("core: negative ManagerShards %d", c.ManagerShards))
	}
	if c.ManagerOpCost < 0 {
		panic(fmt.Sprintf("core: negative ManagerOpCost %v", c.ManagerOpCost))
	}
	if c.ManagerShards > 1 {
		// Distributed managers broker metadata only; the data path is
		// slave-to-slave by construction.
		c.SlaveToSlave = true
	}
	return c
}

func (c Config) cpuWorkers(spec hw.NodeSpec) int {
	if c.CPUWorkers > 0 {
		return c.CPUWorkers
	}
	w := spec.CPUCores - len(spec.GPUs) - 1
	if w < 1 {
		w = 1
	}
	return w
}

// Stats aggregates a run's activity.
type Stats struct {
	// Elapsed is the virtual time from Run start to completion.
	ElapsedSeconds float64

	TasksSMP    int
	TasksCUDA   int
	TasksRemote int // tasks dispatched to slave nodes (subset of the above)

	// GPU traffic, all devices.
	BytesH2D uint64
	BytesD2H uint64
	XfersH2D int
	XfersD2H int

	// Network traffic.
	NetBytes uint64
	NetMsgs  int
	// Inter-node data routed master->slave vs slave->slave.
	BytesMtoS uint64
	BytesStoS uint64

	// Software-cache behaviour, all devices.
	CacheHits   int
	CacheMisses int
	Evictions   int
	Writebacks  int // dirty lines written back (eviction, wt, flush)

	// Presend: tasks shipped to a node before it was idle.
	Presends int

	// KernelBusySeconds sums kernel engine busy time across GPUs.
	KernelBusySeconds float64

	// Power model (metered on every run; throttles only move when
	// Config.PowerCapWatts is set).
	PowerPeakWatts float64 // high-water modeled cluster draw
	EnergyJoules   float64 // idle baseline + per-kernel busy deltas
	PowerThrottles int     // kernel launches deferred by the governor

	// TasksPerNode counts tasks executed on each node (SMP + CUDA).
	TasksPerNode []int

	// Fault tolerance (all zero unless Config.Faults was set).
	FaultDropsInjected int     // messages the injector lost or blackholed
	NetMsgsDropped     int     // undelivered messages as seen by the fabric
	NetRetries         int     // reliable-AM retransmissions
	HeartbeatMisses    int     // failure-detector probe misses
	DeadNodes          int     // nodes declared dead
	TasksReexecuted    int     // tasks re-run on survivors during recovery
	RecoverySeconds    float64 // virtual time from first death to last rebuild

	// Distributed managers (all zero unless ManagerShards > 1 or
	// ManagerOpCost > 0).
	ManagerOps       int // directory/dependence operations served by shards
	ManagerRemoteOps int // subset served by a shard hosted off the caller's node
	ManagerFailovers int // shards rehosted after a manager crash
	ManagerBrokered  int // slave-to-slave pushes brokered by a non-master shard host

	// Metrics is the full registry snapshot the summary fields above were
	// derived from, in deterministic instrument order.
	Metrics []metrics.Sample
}

// Utilization returns average GPU compute utilization in [0,1].
func (s Stats) Utilization(numGPUs int) float64 {
	if s.ElapsedSeconds == 0 || numGPUs == 0 {
		return 0
	}
	return s.KernelBusySeconds / (s.ElapsedSeconds * float64(numGPUs))
}
