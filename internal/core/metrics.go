package core

import (
	"strconv"

	"github.com/bsc-repro/ompss/internal/coherence"
	"github.com/bsc-repro/ompss/internal/gasnet"
	"github.com/bsc-repro/ompss/internal/gpusim"
	"github.com/bsc-repro/ompss/internal/metrics"
	"github.com/bsc-repro/ompss/internal/sched"
)

// The runtime's activity counters are typed instruments in the run's
// metrics registry (Config.Metrics) rather than ad-hoc struct fields:
// every increment is visible in a mid-run Registry.Snapshot, and
// collectStats derives the Stats summary from the same instruments, so
// the two can never disagree. All instruments count deterministically —
// they only record virtual-time activity.

// rtMetrics bundles the cross-cutting runtime instruments.
type rtMetrics struct {
	presends   *metrics.Counter
	writebacks *metrics.Counter
	bytesMtoS  *metrics.Counter
	bytesStoS  *metrics.Counter
	remoteRun  *metrics.Counter
	retries    *metrics.Counter
	hbMisses   *metrics.Counter
	reexecs    *metrics.Counter
	deadNodes  *metrics.Counter

	// Distributed managers (internal/dmgr); only move when the manager
	// layer is armed (ManagerShards > 1 or ManagerOpCost > 0).
	mgrOps       *metrics.Counter
	mgrRemoteOps *metrics.Counter
	mgrFailovers *metrics.Counter
	mgrBrokered  *metrics.Counter
	mgrDirMsgs   *metrics.Counter
}

func newRTMetrics(reg *metrics.Registry) *rtMetrics {
	return &rtMetrics{
		presends:   reg.Counter("presend_total"),
		writebacks: reg.Counter("writebacks_total"),
		bytesMtoS:  reg.Counter("net_bytes_total", metrics.L("route", "mtos")),
		bytesStoS:  reg.Counter("net_bytes_total", metrics.L("route", "stos")),
		remoteRun:  reg.Counter("tasks_remote_total"),
		retries:    reg.Counter("net_retries_total"),
		hbMisses:   reg.Counter("heartbeat_misses_total"),
		reexecs:    reg.Counter("tasks_reexecuted_total"),
		deadNodes:  reg.Counter("nodes_dead_total"),

		mgrOps:       reg.Counter("mgr_ops_total"),
		mgrRemoteOps: reg.Counter("mgr_ops_total", metrics.L("route", "remote")),
		mgrFailovers: reg.Counter("mgr_failovers_total"),
		mgrBrokered:  reg.Counter("mgr_brokered_pushes_total"),
		mgrDirMsgs:   reg.Counter("mgr_dir_msgs_total"),
	}
}

// nodeMetrics bundles one image's instruments.
type nodeMetrics struct {
	tasksSMP       *metrics.Counter
	tasksCUDA      *metrics.Counter
	prefetchPops   *metrics.Counter // tasks popped early by a GPU manager
	prefetchStaged *metrics.Counter // of those, staged successfully
	fragAssemblies *metrics.Counter // consumer regions assembled from >1 holder fragment
	taskRunNS      *metrics.Histogram
	stageNS        *metrics.Histogram
}

func newNodeMetrics(reg *metrics.Registry, id int) nodeMetrics {
	node := metrics.L("node", strconv.Itoa(id))
	return nodeMetrics{
		tasksSMP:       reg.Counter("tasks_total", metrics.L("kind", "smp"), node),
		tasksCUDA:      reg.Counter("tasks_total", metrics.L("kind", "cuda"), node),
		prefetchPops:   reg.Counter("prefetch_pops_total", node),
		prefetchStaged: reg.Counter("prefetch_staged_total", node),
		fragAssemblies: reg.Counter("coherence_fragment_assemblies", node),
		taskRunNS:      reg.Histogram("task_run_ns", node),
		stageNS:        reg.Histogram("stage_ns", node),
	}
}

// schedHooks builds the queue-depth/steal instruments of one scheduler.
// scope distinguishes the per-node schedulers from the master's
// cluster-level one.
func schedHooks(reg *metrics.Registry, scope string) sched.Hooks {
	l := metrics.L("sched", scope)
	return sched.Hooks{
		Queued: reg.Gauge("sched_queue_depth", l),
		Steals: reg.Counter("sched_steals_total", l),
	}
}

// lookaheadHooks builds the window-depth/refill instruments of one
// node's lookahead wrapper.
func lookaheadHooks(reg *metrics.Registry, scope string) sched.LookaheadHooks {
	l := metrics.L("sched", scope)
	return sched.LookaheadHooks{
		Depth:   reg.Gauge("sched_lookahead_depth", l),
		Refills: reg.Counter("sched_lookahead_refills_total", l),
	}
}

// cacheInstruments builds the hit/miss/eviction counters of one device's
// software cache.
func cacheInstruments(reg *metrics.Registry, node, gpu int) coherence.Instruments {
	ls := []metrics.Label{metrics.L("node", strconv.Itoa(node)), metrics.L("gpu", strconv.Itoa(gpu))}
	return coherence.Instruments{
		Hits:      reg.Counter("cache_hits_total", ls...),
		Misses:    reg.Counter("cache_misses_total", ls...),
		Evictions: reg.Counter("cache_evictions_total", ls...),
	}
}

// deviceInstruments builds one GPU's activity counters.
func deviceInstruments(reg *metrics.Registry, node, gpu int) gpusim.Instruments {
	ls := []metrics.Label{metrics.L("node", strconv.Itoa(node)), metrics.L("gpu", strconv.Itoa(gpu))}
	return gpusim.Instruments{
		Kernels:    reg.Counter("gpu_kernels_total", ls...),
		BytesH2D:   reg.Counter("gpu_bytes_total", append([]metrics.Label{metrics.L("dir", "h2d")}, ls...)...),
		BytesD2H:   reg.Counter("gpu_bytes_total", append([]metrics.Label{metrics.L("dir", "d2h")}, ls...)...),
		KernelBusy: reg.Counter("gpu_busy_ns", ls...),
		DMABusy:    reg.Counter("gpu_dma_busy_ns", ls...),
	}
}

// endpointInstruments builds one node's active-message counters.
func endpointInstruments(reg *metrics.Registry, node int) gasnet.Instruments {
	l := metrics.L("node", strconv.Itoa(node))
	return gasnet.Instruments{
		MsgsSent:   reg.Counter("am_msgs_total", l),
		BytesSent:  reg.Counter("am_bytes_total", l),
		AcksSent:   reg.Counter("am_acks_total", l),
		Retries:    reg.Counter("am_retries_total", l),
		Duplicates: reg.Counter("am_duplicates_total", l),
	}
}
