package core

import (
	"time"

	"github.com/bsc-repro/ompss/internal/gpusim"
	"github.com/bsc-repro/ompss/internal/hw"
	"github.com/bsc-repro/ompss/internal/memspace"
	"github.com/bsc-repro/ompss/internal/sched"
	"github.com/bsc-repro/ompss/internal/task"
)

// This file is the runtime side of the HEFT cost model: per-place
// compute/transfer estimates derived from the hardware specs
// (gpusim.KernelCost, TransferCost) and the coherence directory's view of
// where each task's data currently lives, plus the memoized upward rank
// over the dependency graph. The estimators are predictions only — the
// simulated execution still charges the exact modeled costs — so a wrong
// estimate degrades the schedule, never correctness.

// incompatible marks a place that cannot run the task at all.
var incompatible = sched.Estimate{Compute: -1}

// missingBytes is size minus held, saturating at zero (held can exceed
// the queried region when the directory tracks a covering line).
func missingBytes(size, held uint64) uint64 {
	if held >= size {
		return 0
	}
	return size - held
}

// placeEstimates predicts, for each local place, how long t would compute
// there and how long its input data would take to arrive. Place 0 is the
// CPU pool; place 1+g is GPU g. The transfer term charges only the bytes
// the directory says are missing at the place, so a task whose inputs are
// already resident looks cheap exactly where affinity would send it.
func (n *nodeRT) placeEstimates(t *task.Task) []sched.Estimate {
	out := make([]sched.Estimate, n.places)
	for place := 0; place < n.places; place++ {
		if !n.canRun(place, t) {
			out[place] = incompatible
			continue
		}
		var e sched.Estimate
		if place == 0 {
			e.Compute = t.Work.CPUCost(n.spec)
			for _, c := range t.Copies() {
				if !c.Access.Reads() {
					continue
				}
				if miss := missingBytes(c.Region.Size, n.dir.HeldBytes(c.Region, memspace.Host(n.id))); miss > 0 {
					// Host staging is a device readback or a network pull;
					// charge the slower of the two wires the node owns.
					e.Transfer += time.Duration(float64(miss) / n.spec.HostMemBandwidth * 1e9)
				}
			}
		} else {
			g := place - 1
			spec := n.spec.GPUs[g]
			e.Compute = t.Work.GPUCost(spec)
			loc := memspace.GPU(n.id, g)
			for _, c := range t.Copies() {
				if !c.Access.Reads() {
					continue
				}
				if miss := missingBytes(c.Region.Size, n.dir.HeldBytes(c.Region, loc)); miss > 0 {
					e.Transfer += gpusim.TransferCost(spec, miss)
				}
			}
		}
		out[place] = e
	}
	return out
}

// nodeHeldBytes is the cluster-level residency of r on node k, mirroring
// clusterScore: the master's host and GPUs together count as node 0,
// slaves count their host image only.
func (rt *Runtime) nodeHeldBytes(r memspace.Region, k int) uint64 {
	m := rt.master()
	if k == 0 {
		if hb := m.dir.HeldBytes(r, memspace.Host(0)); hb > 0 {
			return hb
		}
		for g := range m.devs {
			if hb := m.dir.HeldBytes(r, memspace.GPU(0, g)); hb > 0 {
				return hb
			}
		}
		return 0
	}
	if rt.nodeIsDead(k) {
		return 0
	}
	return m.dir.HeldBytes(r, memspace.Host(k))
}

// clusterEstimates predicts per-node finish components for the master's
// cluster-level scheduler: compute on the node's own silicon, transfer
// over the interconnect for whatever bytes the node is missing (plus the
// PCIe hop for CUDA tasks).
func (rt *Runtime) clusterEstimates(t *task.Task) []sched.Estimate {
	net := rt.cfg.Cluster.Net
	out := make([]sched.Estimate, len(rt.nodes))
	for k, n := range rt.nodes {
		if !rt.clusterCanRun(k, t) {
			out[k] = incompatible
			continue
		}
		var e sched.Estimate
		var gspec *hw.GPUSpec
		if t.Device == task.CUDA {
			spec := n.spec.GPUs[0]
			gspec = &spec
			e.Compute = t.Work.GPUCost(spec)
		} else {
			e.Compute = t.Work.CPUCost(n.spec)
		}
		for _, c := range t.Copies() {
			if !c.Access.Reads() {
				continue
			}
			miss := missingBytes(c.Region.Size, rt.nodeHeldBytes(c.Region, k))
			if miss == 0 {
				continue
			}
			if k != 0 {
				// The bytes cross the wire (from the master or a peer).
				e.Transfer += net.PerMessageOverhead + net.Latency +
					time.Duration(float64(miss)/net.Bandwidth*1e9)
			}
			if gspec != nil {
				// And then the PCIe hop into the device.
				e.Transfer += gpusim.TransferCost(*gspec, miss)
			}
		}
		out[k] = e
	}
	return out
}

// avgCompute is the HEFT "average computation cost" of t: its modeled
// duration averaged over every unit in the cluster that can run it.
func (rt *Runtime) avgCompute(t *task.Task) time.Duration {
	var sum time.Duration
	var cnt int
	for _, n := range rt.nodes {
		if t.Device == task.CUDA {
			for _, gs := range n.spec.GPUs {
				sum += t.Work.GPUCost(gs)
				cnt++
			}
		} else {
			sum += t.Work.CPUCost(n.spec)
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / time.Duration(cnt)
}

// upwardRank is the HEFT task priority: average compute cost plus the
// maximum rank over known successors in the dependency graph, memoized
// per task. Ranks are computed against the graph as known when the task
// first becomes ready; arcs added by later submissions do not retrofit
// already-memoized ranks (standard for an online HEFT — the rank is a
// priority, not a guarantee).
func (rt *Runtime) upwardRank(t *task.Task) time.Duration {
	if r, ok := rt.rankMemo[t.ID]; ok {
		return r
	}
	// Iterative DFS: the graph is acyclic, and the walk fully resolves each
	// pushed subtree before its parent advances, so any task reached twice
	// is already memoized.
	type frame struct {
		t     *task.Task
		succs []*task.Task
		i     int
	}
	stack := []frame{{t: t, succs: rt.graph.Successors(t)}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.succs) {
			s := f.succs[f.i]
			f.i++
			if _, ok := rt.rankMemo[s.ID]; !ok {
				stack = append(stack, frame{t: s, succs: rt.graph.Successors(s)})
			}
			continue
		}
		var best time.Duration
		for _, s := range f.succs {
			if r := rt.rankMemo[s.ID]; r > best {
				best = r
			}
		}
		rt.rankMemo[f.t.ID] = rt.avgCompute(f.t) + best
		stack = stack[:len(stack)-1]
	}
	return rt.rankMemo[t.ID]
}

// costModel bundles the node-local estimators for the place scheduler.
// Built for every policy (only HEFT consults it; construction is free).
func (n *nodeRT) costModel() *sched.CostModel {
	return &sched.CostModel{Estimates: n.placeEstimates, Rank: n.rt.upwardRank}
}

// clusterCostModel bundles the cluster-level estimators.
func (rt *Runtime) clusterCostModel() *sched.CostModel {
	return &sched.CostModel{Estimates: rt.clusterEstimates, Rank: rt.upwardRank}
}
