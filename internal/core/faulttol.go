package core

import (
	"fmt"
	"sort"

	"github.com/bsc-repro/ompss/internal/detmap"
	"github.com/bsc-repro/ompss/internal/faults"
	"github.com/bsc-repro/ompss/internal/gasnet"
	"github.com/bsc-repro/ompss/internal/memspace"
	"github.com/bsc-repro/ompss/internal/sim"
	"github.com/bsc-repro/ompss/internal/task"
	"github.com/bsc-repro/ompss/internal/trace"
)

// Heartbeat active messages (master -> slave probe, slave -> master reply).
const (
	amPing = "ping"
	amPong = "pong"
)

// ftState is the master-side fault-tolerance machinery, created only when
// Config.Faults is set. With it absent (rt.ft == nil) every code path in
// the runtime behaves bit-identically to a build without the subsystem.
type ftState struct {
	inj *faults.Injector

	ackTimeout    sim.Duration
	maxAttempts   int
	hbInterval    sim.Duration
	missThreshold int

	dead       []bool
	pongSince  []bool // a pong arrived since the last probe round
	missStreak []int  // consecutive unanswered probes

	// inflightNode/inflightTask track tasks dispatched to remote nodes but
	// not yet retired, so a dead node's work can be requeued. Entries are
	// registered synchronously at pop time in the comm loop — before the
	// dispatch process even starts — so a death can never catch a task in
	// an untracked window.
	inflightNode map[task.ID]int
	inflightTask map[task.ID]*task.Task

	// xferPeers records the two endpoints of every pending transfer ack;
	// xferFailed marks transfers aborted by a peer's death so their waiters
	// can distinguish failure from completion.
	xferPeers  map[int64][2]int
	xferFailed map[int64]bool

	// recoveryDone maps re-executed task ids to their completion events.
	// Entries are never removed: a later recovery sharing a task must see
	// it already ran (re-running a non-idempotent producer twice would
	// corrupt its output), and completion paths use membership to divert
	// recovery tasks away from the dependency graph, which already retired
	// them once.
	recoveryDone map[task.ID]*sim.Event

	// restoreEvents fences regions whose lost current version is being
	// rebuilt, keyed by directory fragment. Normal tasks touching any
	// overlapping region are held back by clusterCanRun until the rebuild
	// completes.
	restoreEvents map[memspace.Region]*sim.Event

	haveRecovered bool
	recoverStart  sim.Time
	recoverEnd    sim.Time
}

// armFaultTolerance builds the injector and protocol state from
// Config.Faults and wires them into the fabric and every endpoint. Called
// from New after the nodes exist, before any endpoint starts.
func (rt *Runtime) armFaultTolerance() {
	plan := *rt.cfg.Faults
	for _, c := range plan.Crashes {
		if c.Node == 0 {
			panic("core: fault plan crashes node 0; the master is the recovery coordinator and cannot fail")
		}
	}
	lat := rt.cfg.Cluster.Net.Latency
	ft := &ftState{
		inj:           faults.NewInjector(plan),
		ackTimeout:    plan.AckTimeoutOr(lat),
		maxAttempts:   plan.MaxAttemptsOr(),
		hbInterval:    plan.HeartbeatIntervalOr(),
		missThreshold: plan.MissThresholdOr(),
		dead:          make([]bool, len(rt.nodes)),
		pongSince:     make([]bool, len(rt.nodes)),
		missStreak:    make([]int, len(rt.nodes)),
		inflightNode:  make(map[task.ID]int),
		inflightTask:  make(map[task.ID]*task.Task),
		xferPeers:     make(map[int64][2]int),
		xferFailed:    make(map[int64]bool),
		recoveryDone:  make(map[task.ID]*sim.Event),
		restoreEvents: make(map[memspace.Region]*sim.Event),
	}
	rt.ft = ft
	rt.fabric.SetHook(ft.inj)
	if len(rt.nodes) < 2 {
		return // no peers: injection only, nothing to harden
	}
	rt.master().dir.TrackProducers(memspace.Host(0))
	for _, n := range rt.nodes {
		n := n
		n.ep.EnableReliability(gasnet.Reliability{
			AckTimeout:  ft.ackTimeout,
			MaxAttempts: ft.maxAttempts,
			OnRetry: func(to int, handler string, attempt int) {
				rt.met.retries.Inc()
				now := rt.e.Now()
				rt.cfg.Trace.Record(trace.Span{Kind: trace.Retry,
					Name: fmt.Sprintf("%s->node%d#%d", handler, to, attempt),
					Node: n.id, Dev: -1, Start: now, End: now})
			},
		})
		// The filter models the death notification the master would
		// broadcast: once a node is declared dead its stale traffic is
		// acknowledged (silencing retransmissions) but never dispatched,
		// so it cannot corrupt cluster state.
		n.ep.SetInboundFilter(func(from int) bool { return !ft.dead[from] })
	}
}

// nodeIsDead reports whether node k has been declared failed.
func (rt *Runtime) nodeIsDead(k int) bool {
	return rt.ft != nil && rt.ft.dead[k]
}

// isRecoveryTask reports whether t is being re-executed to rebuild lost
// data (such tasks bypass the restore fences their own re-run satisfies).
func (rt *Runtime) isRecoveryTask(t *task.Task) bool {
	if rt.ft == nil {
		return false
	}
	_, rec := rt.ft.recoveryDone[t.ID]
	return rec
}

// spawnHeartbeat starts the master's failure detector: every interval it
// checks the previous round's replies, then probes each live slave with a
// best-effort control datagram. missThreshold consecutive unanswered
// probes declare the slave dead.
func (rt *Runtime) spawnHeartbeat() {
	if rt.mgr != nil && rt.mgr.sharded {
		rt.spawnShardedHeartbeat()
		return
	}
	ft := rt.ft
	m := rt.master()
	rt.e.Go("heartbeat", func(p *sim.Proc) {
		awaiting := make([]bool, len(rt.nodes))
		for {
			p.Sleep(ft.hbInterval)
			if m.stopping {
				return
			}
			for k := 1; k < len(rt.nodes); k++ {
				if ft.dead[k] {
					continue
				}
				if awaiting[k] {
					if ft.pongSince[k] {
						ft.missStreak[k] = 0
					} else {
						ft.missStreak[k]++
						rt.met.hbMisses.Inc()
						now := p.Now()
						rt.cfg.Trace.Record(trace.Span{Kind: trace.Heartbeat,
							Name: fmt.Sprintf("miss:node%d#%d", k, ft.missStreak[k]),
							Node: 0, Dev: -1, Start: now, End: now})
						if ft.missStreak[k] >= ft.missThreshold {
							rt.nodeDead(k, "heartbeat")
							continue
						}
					}
				}
				ft.pongSince[k] = false
				awaiting[k] = true
				m.ep.AMProbe(p, k, amPing, nil)
			}
		}
	})
}

// spawnShardedHeartbeat is the distributed-manager failure detector: one
// probe loop per manager node, each probing only the slaves it monitors.
// Slave k is monitored by the live manager at position k mod (live
// managers), except that no node monitors itself — those slaves fall to
// the master. When a manager dies, its loop exits and the deterministic
// assignment re-routes its slaves to the survivors at the next round; the
// per-slave reply/streak state is shared, so a handover never loses an
// accumulated miss streak.
func (rt *Runtime) spawnShardedHeartbeat() {
	ft := rt.ft
	mgrs := rt.mgr.dmap.ManagerNodes() // includes node 0 (shard 0's host)
	liveMon := func(k int) int {
		live := make([]int, 0, len(mgrs))
		for _, mk := range mgrs {
			if !ft.dead[mk] {
				live = append(live, mk)
			}
		}
		mon := live[k%len(live)]
		if mon == k {
			mon = 0
		}
		return mon
	}
	for _, mk := range mgrs {
		mk := mk
		rt.e.Go(fmt.Sprintf("heartbeat:%d", mk), func(p *sim.Proc) {
			me := rt.nodes[mk]
			awaiting := make([]bool, len(rt.nodes))
			for {
				p.Sleep(ft.hbInterval)
				if rt.master().stopping {
					return
				}
				// A crashed manager's detector loop stops executing with the
				// node (physical death, from the injector's ground truth —
				// not the cluster-level ft.dead verdict, which lags by the
				// detection window): its probes would blackhole and convict
				// every slave it monitors within the same window its own
				// death is being detected.
				if mk != 0 && (ft.dead[mk] || ft.inj.NodeCrashed(mk, p.Now())) {
					return
				}
				for k := 1; k < len(rt.nodes); k++ {
					if ft.dead[k] {
						continue
					}
					if liveMon(k) != mk {
						awaiting[k] = false
						continue
					}
					if awaiting[k] {
						if ft.pongSince[k] {
							ft.missStreak[k] = 0
						} else {
							ft.missStreak[k]++
							rt.met.hbMisses.Inc()
							now := p.Now()
							rt.cfg.Trace.Record(trace.Span{Kind: trace.Heartbeat,
								Name: fmt.Sprintf("miss:node%d#%d", k, ft.missStreak[k]),
								Node: mk, Dev: -1, Start: now, End: now})
							if ft.missStreak[k] >= ft.missThreshold {
								rt.nodeDead(k, "heartbeat")
								continue
							}
						}
					}
					ft.pongSince[k] = false
					awaiting[k] = true
					me.ep.AMProbe(p, k, amPing, nil)
				}
			}
		})
	}
}

// nodeDead declares slave k failed and recovers: pending transfers
// involving k are failed so their waiters re-route, k's queued and
// in-flight tasks are resubmitted to the survivors, and region versions
// whose only copies died with k are rebuilt by re-running their producer
// chains. Idempotent; the master (node 0) cannot be declared dead.
func (rt *Runtime) nodeDead(k int, reason string) {
	ft := rt.ft
	if ft == nil || k <= 0 || k >= len(rt.nodes) || ft.dead[k] {
		return
	}
	ft.dead[k] = true
	rt.met.deadNodes.Inc()
	m := rt.master()
	now := rt.e.Now()
	if !ft.haveRecovered {
		ft.haveRecovered = true
		ft.recoverStart = now
	}
	if ft.recoverEnd < now {
		ft.recoverEnd = now
	}
	rt.cfg.Trace.Record(trace.Span{Kind: trace.Recovery,
		Name: fmt.Sprintf("dead:node%d:%s", k, reason),
		Node: 0, Dev: -1, Start: now, End: now})
	if m.stopping {
		return // shutting down: results already flushed, nothing to recover
	}
	// Fail every pending transfer with k as a peer so its waiter unblocks
	// and re-routes (sorted for a deterministic wake order).
	var ids []int64
	for _, id := range detmap.Keys(ft.xferPeers) {
		if peers := ft.xferPeers[id]; peers[0] == k || peers[1] == k {
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		ft.xferFailed[id] = true
		rt.ackXfer(id)
	}
	// Requeue k's queued and in-flight tasks on the survivors.
	requeue := rt.clSch.Drain(k)
	var lostIDs []task.ID
	for _, id := range detmap.Keys(ft.inflightNode) {
		if ft.inflightNode[id] == k {
			lostIDs = append(lostIDs, id)
		}
	}
	for _, id := range lostIDs {
		requeue = append(requeue, ft.inflightTask[id])
		delete(ft.inflightNode, id)
		delete(ft.inflightTask, id)
		rt.met.reexecs.Inc()
	}
	for _, t := range requeue {
		rt.clSch.Submit(t, -1)
	}
	rt.cluster().outstanding[k] = 0
	// If k hosted manager shards, rehost them on the master before the
	// data recovery below: the rebuilt directory slices must be owned by
	// a live manager while the producer chains replay.
	rt.mgrFailover(now, k)
	rt.recoverLost(k)
	m.signalWork()
}

// recoverLost rebuilds the region versions whose only live copies died
// with node k. The coherence directory kept, per region, the chain of
// producer tasks since the master's base copy was last current; the union
// of the lost regions' chains is replayed sequentially in ascending task
// id — a valid topological order, since a task can only depend on
// earlier-submitted tasks. Each region's fence lifts as soon as its
// newest producer has re-run.
func (rt *Runtime) recoverLost(k int) {
	ft, m := rt.ft, rt.master()
	lost := m.dir.PurgeNode(k)
	if len(lost) == 0 {
		return
	}
	detect := rt.e.Now()
	type rebuild struct {
		r      memspace.Region
		lastID task.ID
		ev     *sim.Event
	}
	var (
		chain    []*task.Task
		inChain  = map[task.ID]bool{}
		rebuilds []rebuild
		bytes    uint64
	)
	for _, r := range lost {
		if _, busy := ft.restoreEvents[r]; busy {
			continue // an earlier recovery is already rebuilding it
		}
		prods := m.dir.Producers(r)
		m.dir.Rehome(r)
		if len(prods) == 0 {
			continue // the master's base copy is already the current version
		}
		var last task.ID
		for _, t := range prods {
			if !inChain[t.ID] {
				inChain[t.ID] = true
				chain = append(chain, t)
			}
			if t.ID > last {
				last = t.ID
			}
		}
		ev := sim.NewEvent(rt.e)
		ft.restoreEvents[r] = ev
		rebuilds = append(rebuilds, rebuild{r: r, lastID: last, ev: ev})
		bytes += r.Size
	}
	if len(chain) == 0 {
		return
	}
	sort.Slice(chain, func(i, j int) bool { return chain[i].ID < chain[j].ID })
	rt.e.Go(fmt.Sprintf("recover:node%d", k), func(p *sim.Proc) {
		rebuildSpan := rt.cfg.Trace.Begin(trace.Recovery,
			fmt.Sprintf("rebuild:node%d", k), 0, -1, detect)
		for _, t := range chain {
			done, running := ft.recoveryDone[t.ID]
			if !running {
				done = sim.NewEvent(rt.e)
				ft.recoveryDone[t.ID] = done
				rt.met.reexecs.Inc()
				rt.clSch.Submit(t, -1)
				m.signalWork()
			}
			done.Wait(p)
			// A region is restored once its newest producer has re-run.
			for i := range rebuilds {
				rb := &rebuilds[i]
				if rb.ev != nil && rb.lastID <= t.ID {
					delete(ft.restoreEvents, rb.r)
					rb.ev.Trigger()
					rb.ev = nil
				}
			}
			m.signalWork() // restored regions unfence queued tasks
		}
		now := p.Now()
		if ft.recoverEnd < now {
			ft.recoverEnd = now
		}
		rebuildSpan.EndBytes(now, bytes)
	})
}

// fenced reports whether any fragment overlapping r has a rebuild in
// progress, returning the first such fragment in address order so waiters
// block deterministically.
func (ft *ftState) fenced(r memspace.Region) bool {
	_, busy := ft.fencedOn(r)
	return busy
}

func (ft *ftState) fencedOn(r memspace.Region) (*sim.Event, bool) {
	if len(ft.restoreEvents) == 0 {
		return nil, false
	}
	for _, fr := range detmap.KeysFunc(ft.restoreEvents, regionLess) {
		if fr.Overlaps(r) {
			return ft.restoreEvents[fr], true
		}
	}
	return nil, false
}

// waitRestore blocks until no rebuild overlapping r is pending. No-op
// without fault tolerance or when r is not fenced.
func (rt *Runtime) waitRestore(p *sim.Proc, r memspace.Region) {
	if rt.ft == nil {
		return
	}
	for {
		ev, busy := rt.ft.fencedOn(r)
		if !busy {
			return
		}
		ev.Wait(p)
	}
}

// restorePending reports whether a rebuild overlapping r is in progress.
func (rt *Runtime) restorePending(r memspace.Region) bool {
	return rt.ft != nil && rt.ft.fenced(r)
}

// xferFailedTake consumes the failure mark of transfer id, reporting
// whether its ack was synthesized by a peer's death rather than earned.
func (rt *Runtime) xferFailedTake(id int64) bool {
	if rt.ft == nil || !rt.ft.xferFailed[id] {
		return false
	}
	delete(rt.ft.xferFailed, id)
	return true
}
