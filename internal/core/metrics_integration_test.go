package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/bsc-repro/ompss/internal/memspace"
	"github.com/bsc-repro/ompss/internal/metrics"
	"github.com/bsc-repro/ompss/internal/task"
	"github.com/bsc-repro/ompss/internal/trace"
)

// metricsFixtureRun executes a small cluster workload with an external
// registry and trace recorder attached, returning all three outputs.
func metricsFixtureRun(t *testing.T) (Stats, *metrics.Registry, *trace.Recorder) {
	t.Helper()
	cfg := baseCfg(2, 1)
	cfg.Prefetch = true
	reg := metrics.New()
	rec := trace.New()
	cfg.Metrics = reg
	cfg.Trace = rec
	rt := New(cfg)
	stats, err := rt.Run(func(mc *MainCtx) {
		var regs []memspace.Region
		for i := 0; i < 4; i++ {
			r := mc.Alloc(1 << 16)
			mc.InitSeq(r, nil)
			regs = append(regs, r)
		}
		for round := 0; round < 2; round++ {
			for i, r := range regs {
				mc.Submit(TaskDef{Name: fmt.Sprintf("g%d_%d", round, i), Device: task.CUDA,
					Deps: []task.Dep{inoutDep(r)},
					Work: incWork{r: r, delta: 1, cost: time.Duration(i+1) * time.Millisecond}})
			}
		}
		mc.Submit(TaskDef{Name: "cpu", Device: task.SMP,
			Deps: []task.Dep{inoutDep(regs[0])},
			Work: incWork{r: regs[0], delta: 1, cost: time.Millisecond}})
		mc.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	return stats, reg, rec
}

func TestMetricsAgreeWithStats(t *testing.T) {
	stats, reg, _ := metricsFixtureRun(t)
	if len(stats.Metrics) == 0 {
		t.Fatal("Stats.Metrics snapshot is empty")
	}
	// The typed instruments and the derived Stats fields must agree: both
	// were produced by the same counters.
	var tasks, hits, misses int64
	for _, s := range stats.Metrics {
		if strings.HasPrefix(s.ID, "tasks_total{") {
			tasks += s.Value
		}
		if strings.HasPrefix(s.ID, "cache_hits_total{") {
			hits += s.Value
		}
		if strings.HasPrefix(s.ID, "cache_misses_total{") {
			misses += s.Value
		}
	}
	if want := int64(stats.TasksSMP + stats.TasksCUDA); tasks != want {
		t.Fatalf("tasks_total = %d, Stats says %d", tasks, want)
	}
	if hits != int64(stats.CacheHits) || misses != int64(stats.CacheMisses) {
		t.Fatalf("cache counters %d/%d, Stats says %d/%d",
			hits, misses, stats.CacheHits, stats.CacheMisses)
	}
	// Queue-depth gauges drain to zero at completion but keep a high-water
	// mark; histograms saw every task run.
	var sawQueue, sawHist bool
	for _, s := range stats.Metrics {
		if strings.HasPrefix(s.ID, "sched_queue_depth{") {
			sawQueue = true
			if s.Value != 0 {
				t.Fatalf("queue %s did not drain: %d", s.ID, s.Value)
			}
			if s.Max == 0 {
				t.Fatalf("queue %s never saw a task", s.ID)
			}
		}
		if strings.HasPrefix(s.ID, "task_run_ns{") && s.Value > 0 {
			sawHist = true
		}
	}
	if !sawQueue || !sawHist {
		t.Fatalf("missing instruments (queue=%v hist=%v) in snapshot", sawQueue, sawHist)
	}
	// Mid-run and post-run snapshots come from the same live registry.
	if got := len(reg.Snapshot()); got != len(stats.Metrics) {
		t.Fatalf("registry snapshot has %d samples, Stats captured %d", got, len(stats.Metrics))
	}
}

func TestMetricsTextReplaysBitIdentically(t *testing.T) {
	var outs []string
	for i := 0; i < 2; i++ {
		_, reg, _ := metricsFixtureRun(t)
		var buf bytes.Buffer
		if err := reg.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, buf.String())
	}
	if outs[0] != outs[1] {
		t.Fatalf("metrics text diverged between identical runs:\n%s\nvs\n%s", outs[0], outs[1])
	}
}

func TestTraceEdgesAndCriticalPathFromRun(t *testing.T) {
	stats, _, rec := metricsFixtureRun(t)
	if len(rec.Edges()) == 0 {
		t.Fatal("no dependence arcs mirrored into the trace")
	}
	rep := rec.CriticalPath(5)
	if rep.Tasks != stats.TasksSMP+stats.TasksCUDA {
		t.Fatalf("critical path analyzed %d tasks, %d ran", rep.Tasks, stats.TasksSMP+stats.TasksCUDA)
	}
	if len(rep.Chain) < 2 {
		t.Fatalf("chain too short: %+v", rep.Chain)
	}
	// Each region's 2 rounds + the cpu task form dependent chains; the
	// makespan must be fully decomposed.
	total := rep.Compute + rep.Transfer + rep.Idle
	if total != time.Duration(rep.Makespan) {
		t.Fatalf("compute+transfer+idle %v != makespan %v", total, time.Duration(rep.Makespan))
	}
	var a, b bytes.Buffer
	if err := rec.WritePerfetto(&a); err != nil {
		t.Fatal(err)
	}
	if err := rec.WritePerfetto(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("perfetto re-export differs")
	}
}
