package core

import (
	"bytes"
	"testing"
	"time"

	"github.com/bsc-repro/ompss/internal/hw"
	"github.com/bsc-repro/ompss/internal/memspace"
	"github.com/bsc-repro/ompss/internal/sched"
	"github.com/bsc-repro/ompss/internal/task"
)

// runPowerWorkload runs independent CUDA tasks on a 4-GPU node under the
// given cap, returning the stats and the final bytes of each region.
func runPowerWorkload(t *testing.T, capWatts float64) (Stats, [][]byte) {
	t.Helper()
	cfg := baseCfg(1, 4)
	cfg.PowerCapWatts = capWatts
	rt := New(cfg)
	const tasks = 8
	var out [][]byte
	stats, err := rt.Run(func(mc *MainCtx) {
		var regions []memspace.Region
		for i := 0; i < tasks; i++ {
			i := i
			r := mc.Alloc(4096)
			mc.InitSeq(r, func(b []byte) {
				for j := range b {
					b[j] = byte(i)
				}
			})
			regions = append(regions, r)
			mc.Submit(TaskDef{
				Name: "inc", Device: task.CUDA,
				Deps: []task.Dep{inoutDep(r)},
				Work: incWork{r: r, delta: 7, cost: time.Millisecond},
			})
		}
		mc.TaskWait()
		for _, r := range regions {
			out = append(out, append([]byte(nil), mc.HostBytes(r)...))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return stats, out
}

func TestPowerCapThrottlesWithoutChangingResults(t *testing.T) {
	// testCluster(1, 4): host idles at 100 W, each GPU at 30 W with a
	// 170 W busy delta. Idle baseline 220 W; one kernel 390 W; four
	// concurrent kernels 900 W.
	uncapped, wantBytes := runPowerWorkload(t, 0)
	if uncapped.PowerThrottles != 0 {
		t.Fatalf("uncapped run throttled %d times", uncapped.PowerThrottles)
	}
	if uncapped.PowerPeakWatts <= 400 {
		t.Fatalf("uncapped peak = %g W, want concurrent kernels above 400 W", uncapped.PowerPeakWatts)
	}
	if uncapped.EnergyJoules <= 220*uncapped.ElapsedSeconds {
		t.Fatalf("energy %g J does not exceed the idle baseline", uncapped.EnergyJoules)
	}

	// Cap at 400 W: exactly one kernel fits above the baseline.
	capped, gotBytes := runPowerWorkload(t, 400)
	if capped.PowerPeakWatts > 400 {
		t.Fatalf("capped run peaked at %g W above the 400 W cap", capped.PowerPeakWatts)
	}
	if capped.PowerThrottles == 0 {
		t.Fatal("capped run recorded no throttles")
	}
	if capped.ElapsedSeconds <= uncapped.ElapsedSeconds {
		t.Fatalf("capped run (%gs) not slower than uncapped (%gs)", capped.ElapsedSeconds, uncapped.ElapsedSeconds)
	}
	// The governor only delays launches: every byte must be identical.
	for i := range wantBytes {
		if !bytes.Equal(wantBytes[i], gotBytes[i]) {
			t.Fatalf("region %d differs between capped and uncapped runs", i)
		}
	}
}

func TestPowerCapBelowFloorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for an infeasible cap")
		}
	}()
	cfg := baseCfg(1, 1)
	cfg.PowerCapWatts = 50 // below idle + one kernel delta
	New(cfg)
}

// rooflineWork is compute-bound work whose modeled duration scales with
// the device's effective flops — fast on a GTX480, slower on a Tesla.
type rooflineWork struct {
	flops float64
}

func (w rooflineWork) Name() string { return "roofline" }
func (w rooflineWork) GPUCost(spec hw.GPUSpec) time.Duration {
	return spec.KernelLaunchOverhead + time.Duration(w.flops/spec.EffectiveFlops()*1e9)
}
func (w rooflineWork) CPUCost(spec hw.NodeSpec) time.Duration {
	return time.Duration(w.flops / spec.CPUFlops * 1e9)
}
func (w rooflineWork) Run(*memspace.Store) {}

// runMixed runs independent compute-heavy CUDA tasks on a mixed
// GTX480+Tesla cluster under the given policy. All input data starts on
// the master, which is what misleads the pure byte-affinity policy.
func runMixed(t *testing.T, policy sched.Policy) Stats {
	t.Helper()
	cfg := Config{
		Cluster:          hw.MixedGPUCluster(2, 2),
		Scheduler:        policy,
		Steal:            true,
		SlaveToSlave:     true,
		NonBlockingCache: true,
	}
	rt := New(cfg)
	stats, err := rt.Run(func(mc *MainCtx) {
		for i := 0; i < 32; i++ {
			r := mc.Alloc(1 << 20)
			mc.InitSeq(r, nil)
			mc.Submit(TaskDef{
				Name: "roofline", Device: task.CUDA,
				Deps: []task.Dep{inoutDep(r)},
				Work: rooflineWork{flops: 4e9},
			})
		}
		mc.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestHEFTBeatsAffinityOnMixedCluster is the headline heterogeneity win:
// with every input resident on the master, byte affinity funnels all work
// to node 0 while HEFT's earliest-finish estimate weighs backlog and
// transfer cost and spreads the tasks across the mixed cluster.
func TestHEFTBeatsAffinityOnMixedCluster(t *testing.T) {
	aff := runMixed(t, sched.Affinity)
	heft := runMixed(t, sched.HEFT)
	if heft.ElapsedSeconds >= aff.ElapsedSeconds {
		t.Fatalf("heft (%gs) not faster than affinity (%gs) on the mixed cluster",
			heft.ElapsedSeconds, aff.ElapsedSeconds)
	}
	// HEFT must actually have used more than the master node.
	remote := 0
	for k := 1; k < len(heft.TasksPerNode); k++ {
		remote += heft.TasksPerNode[k]
	}
	if remote == 0 {
		t.Fatal("heft ran everything on the master")
	}
}
