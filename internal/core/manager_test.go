package core

import (
	"fmt"
	goruntime "runtime"
	"testing"
	"time"

	"github.com/bsc-repro/ompss/internal/faults"
)

// shardedCfg is faultedCfg with the manager service model armed and the
// directory/depgraph partitioned over shards manager shards.
func shardedCfg(nodes, shards int, plan *faults.Plan) Config {
	cfg := faultedCfg(nodes, plan)
	cfg.ManagerShards = shards
	cfg.ManagerOpCost = 2 * time.Microsecond
	return cfg
}

func TestManagerShardsOneIsBitIdentical(t *testing.T) {
	// ManagerShards: 1 with zero op cost is the documented no-op spelling:
	// no manager model is built, and the whole run — results AND full
	// stats, timing included — must be indistinguishable from the default
	// config. This is the guarantee that keeps every fig5-13 replay and
	// exact-match test untouched by the sharding layer.
	run := func(shards int) (Stats, []byte) {
		cfg := faultedCfg(4, nil)
		cfg.ManagerShards = shards
		return runFaulted(t, cfg, 8, 3, 10*time.Millisecond)
	}
	s0, r0 := run(0)
	s1, r1 := run(1)
	if fmt.Sprintf("%+v", s0) != fmt.Sprintf("%+v", s1) {
		t.Fatalf("ManagerShards=1 perturbed stats:\n%+v\nvs\n%+v", s0, s1)
	}
	for i := range r0 {
		if r0[i] != r1[i] {
			t.Fatalf("results diverged at region %d: %d vs %d", i, r0[i], r1[i])
		}
	}
}

func TestShardedManagerMatchesCentralizedResults(t *testing.T) {
	// Sharding is state-immediate: every directory and dependence
	// transition happens exactly as in the centralized runtime, only the
	// modeled service time moves. So a sharded run must produce the same
	// bytes as the centralized run of the same program — only timing and
	// op accounting may differ (ops are charged per ownership span, and a
	// region straddling a 256KiB block boundary is one span centralized
	// but several sharded).
	run := func(shards int) (Stats, []byte) {
		return runFaulted(t, shardedCfg(8, shards, nil), 16, 3, 10*time.Millisecond)
	}
	cs, cr := run(1)
	ss, sr := run(4)
	checkAll(t, cr, 3)
	checkAll(t, sr, 3)
	if cs.ManagerOps == 0 {
		t.Fatal("armed manager model recorded no operations")
	}
	if ss.ManagerOps < cs.ManagerOps {
		t.Fatalf("sharded run charged fewer ops than centralized: %d vs %d",
			ss.ManagerOps, cs.ManagerOps)
	}
	// Remote ops flow in both modes (slaves always update some manager
	// across the wire: the master's in centralized mode, the owning
	// shard's host in sharded mode).
	if cs.ManagerRemoteOps == 0 {
		t.Fatal("centralized run charged no remote ops despite slave producers")
	}
	if ss.ManagerRemoteOps == 0 {
		t.Fatal("4-shard run on 8 nodes charged no remote ops")
	}
}

func TestManagerFailoverMidProducerChain(t *testing.T) {
	// Kill the node hosting a manager shard while producer chains over its
	// directory slice are in flight. The shard must be rehosted (failover),
	// its slice rebuilt from producer-chain replay, and the results must
	// come out checksum-exact versus a clean run — and the whole thing must
	// wind down without leaking goroutines.
	before := goruntime.NumGoroutine()

	// 8 nodes, 4 shards -> shard hosts {0, 2, 4, 6}; node 2 owns shard 1.
	// Crash it mid-run, while round-2 tasks still depend on round-1
	// producers tracked in its slice.
	cfg := shardedCfg(8, 4, &faults.Plan{
		Seed:    7,
		Crashes: []faults.Crash{{Node: 2, At: 30 * time.Millisecond}},
	})
	stats, results := runFaulted(t, cfg, 16, 3, 10*time.Millisecond)
	checkAll(t, results, 3)
	if stats.DeadNodes != 1 {
		t.Fatalf("DeadNodes = %d, want 1", stats.DeadNodes)
	}
	if stats.ManagerFailovers == 0 {
		t.Fatal("shard host died but no manager failover was recorded")
	}
	if stats.TasksReexecuted == 0 {
		t.Fatal("producer chain through the dead shard re-executed no tasks")
	}

	settled := eventually(200, 10*time.Millisecond, func() bool {
		goruntime.GC()
		return goruntime.NumGoroutine() <= before
	})
	if !settled {
		buf := make([]byte, 1<<16)
		n := goruntime.Stack(buf, true)
		t.Fatalf("goroutines leaked: %d before, %d after\n%s",
			before, goruntime.NumGoroutine(), buf[:n])
	}
}

func TestShardedManagerSameSeedReplaysBitIdentically(t *testing.T) {
	// Determinism must survive the sharded heartbeat/failover machinery:
	// the same faulted sharded run twice is bit-identical, stats included.
	run := func() (Stats, []byte) {
		cfg := shardedCfg(8, 4, &faults.Plan{
			Seed:    99,
			Crashes: []faults.Crash{{Node: 4, At: 25 * time.Millisecond}},
		})
		return runFaulted(t, cfg, 16, 3, 10*time.Millisecond)
	}
	s1, r1 := run()
	s2, r2 := run()
	if fmt.Sprintf("%+v", s1) != fmt.Sprintf("%+v", s2) {
		t.Fatalf("sharded stats diverged across identical runs:\n%+v\nvs\n%+v", s1, s2)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("results diverged at region %d: %d vs %d", i, r1[i], r2[i])
		}
	}
}
