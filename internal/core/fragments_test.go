package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/bsc-repro/ompss/internal/hw"
	"github.com/bsc-repro/ompss/internal/memspace"
	"github.com/bsc-repro/ompss/internal/metrics"
	"github.com/bsc-repro/ompss/internal/task"
	"github.com/bsc-repro/ompss/internal/trace"
)

// mixWork writes salt plus the (wrapped) sum of its read regions into w.
// Inputs are snapshotted before writing because read and write regions may
// alias arbitrary byte ranges of the same arena. With accum set the old
// contents of w join the sum (an InOut body).
type mixWork struct {
	reads []memspace.Region
	w     memspace.Region
	salt  byte
	accum bool
	cost  time.Duration
}

func (w mixWork) Name() string                      { return "mix" }
func (w mixWork) GPUCost(hw.GPUSpec) time.Duration  { return w.cost }
func (w mixWork) CPUCost(hw.NodeSpec) time.Duration { return w.cost * 3 }
func (w mixWork) Run(store *memspace.Store) {
	if store == nil {
		return
	}
	snaps := make([][]byte, len(w.reads))
	for i, r := range w.reads {
		snaps[i] = append([]byte(nil), store.Bytes(r)...)
	}
	var old []byte
	if w.accum {
		old = append([]byte(nil), store.Bytes(w.w)...)
	}
	out := store.Bytes(w.w)
	for i := range out {
		v := w.salt
		for _, s := range snaps {
			v += s[i%len(s)]
		}
		if w.accum {
			v += old[i]
		}
		out[i] = v
	}
}

// TestRandomOverlapGraphMatchesSerial is the fragment model's property
// test: random task graphs whose dependence regions overlap at arbitrary
// byte ranges must produce, through the full runtime (caches, directory,
// cluster transfers), exactly the bytes the same tasks produce when run
// serially in submit order. Seeded and deterministic.
func TestRandomOverlapGraphMatchesSerial(t *testing.T) {
	const (
		arenaN = 4096
		nTasks = 48
	)
	for _, tc := range []struct {
		nodes, gpus int
		seed        int64
	}{{1, 2, 1}, {2, 1, 2}, {2, 2, 3}, {4, 1, 4}} {
		tc := tc
		t.Run(fmt.Sprintf("%dnode%dgpu_seed%d", tc.nodes, tc.gpus, tc.seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			type spec struct {
				readOffs  []int
				readSizes []int
				writeOff  int
				writeSize int
				salt      byte
				accum     bool
			}
			randRange := func() (int, int) {
				size := 16 + rng.Intn(241)
				return rng.Intn(arenaN - size), size
			}
			specs := make([]spec, nTasks)
			for i := range specs {
				s := &specs[i]
				for r := 0; r < 1+rng.Intn(2); r++ {
					off, size := randRange()
					s.readOffs = append(s.readOffs, off)
					s.readSizes = append(s.readSizes, size)
				}
				s.writeOff, s.writeSize = randRange()
				s.salt = byte(i*13 + 7)
				s.accum = rng.Intn(2) == 0
			}

			build := func(arena memspace.Region, i int) mixWork {
				s := specs[i]
				w := mixWork{
					w:     memspace.Region{Addr: arena.Addr + uint64(s.writeOff), Size: uint64(s.writeSize)},
					salt:  s.salt,
					accum: s.accum,
					cost:  time.Duration(i%5+1) * 100 * time.Microsecond,
				}
				for r := range s.readOffs {
					w.reads = append(w.reads,
						memspace.Region{Addr: arena.Addr + uint64(s.readOffs[r]), Size: uint64(s.readSizes[r])})
				}
				return w
			}

			// Full runtime.
			rt := New(baseCfg(tc.nodes, tc.gpus))
			var arena memspace.Region
			var got []byte
			_, err := rt.Run(func(mc *MainCtx) {
				arena = mc.Alloc(arenaN)
				mc.InitSeq(arena, func(b []byte) {
					for i := range b {
						b[i] = byte(i * 7)
					}
				})
				for i := 0; i < nTasks; i++ {
					w := build(arena, i)
					deps := make([]task.Dep, 0, len(w.reads)+1)
					for _, r := range w.reads {
						deps = append(deps, inDep(r))
					}
					if w.accum {
						deps = append(deps, inoutDep(w.w))
					} else {
						deps = append(deps, outDep(w.w))
					}
					dev := task.CUDA
					if i%7 == 0 {
						dev = task.SMP
					}
					mc.Submit(TaskDef{Name: fmt.Sprintf("mix%d", i), Device: dev,
						Deps: deps, Work: w})
				}
				mc.TaskWait()
				got = append([]byte(nil), mc.HostBytes(arena)...)
			})
			if err != nil {
				t.Fatal(err)
			}

			// Serial reference: same tasks, submit order, one host store.
			serial := memspace.NewStore(memspace.Host(0))
			b := serial.Bytes(arena)
			for i := range b {
				b[i] = byte(i * 7)
			}
			for i := 0; i < nTasks; i++ {
				build(arena, i).Run(serial)
			}
			want := serial.Bytes(arena)
			if !bytes.Equal(got, want) {
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("arena byte %d differs: runtime %d, serial %d", i, got[i], want[i])
					}
				}
			}
		})
	}
}

// fragmentFixtureRun executes a workload whose consumer region must be
// assembled from two holder fragments: a GPU produces the left half of an
// initialized region, then a host task reads the whole region. One node
// keeps the assembly on the local D2H gather path, where the "assemble"
// span is emitted (cluster assemblies surface as per-fragment net spans).
func fragmentFixtureRun(t *testing.T) (*metrics.Registry, *trace.Recorder) {
	t.Helper()
	cfg := baseCfg(1, 2)
	reg := metrics.New()
	rec := trace.New()
	cfg.Metrics = reg
	cfg.Trace = rec
	rt := New(cfg)
	_, err := rt.Run(func(mc *MainCtx) {
		r := mc.Alloc(1 << 16)
		mc.InitSeq(r, nil)
		left := memspace.Region{Addr: r.Addr, Size: r.Size / 2}
		mc.Submit(TaskDef{Name: "left", Device: task.CUDA,
			Deps: []task.Dep{inoutDep(left)},
			Work: incWork{r: left, delta: 1, cost: time.Millisecond}})
		mc.Submit(TaskDef{Name: "whole", Device: task.SMP,
			Deps: []task.Dep{inDep(r)},
			Work: incWork{r: r, delta: 0, cost: time.Millisecond}})
		mc.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg, rec
}

// TestFragmentAssemblyCounterAndSpans checks the observability of the
// fragment paths: assembling a consumer region from several holder
// fragments increments coherence_fragment_assemblies and emits "assemble"
// transfer spans, and the Perfetto export of such a run stays
// bit-identical across identical runs.
func TestFragmentAssemblyCounterAndSpans(t *testing.T) {
	var perfettos []string
	for i := 0; i < 2; i++ {
		reg, rec := fragmentFixtureRun(t)
		var assemblies int64
		for _, s := range reg.Snapshot() {
			if strings.HasPrefix(s.ID, "coherence_fragment_assemblies{") {
				assemblies += s.Value
			}
		}
		if assemblies == 0 {
			t.Fatal("coherence_fragment_assemblies stayed zero on a fragmented workload")
		}
		var buf bytes.Buffer
		if err := rec.WritePerfetto(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "assemble") {
			t.Fatal("no assemble spans in the Perfetto export")
		}
		perfettos = append(perfettos, buf.String())
	}
	if perfettos[0] != perfettos[1] {
		t.Fatal("perfetto export diverged between identical fragmented runs")
	}
}

// TestExactMatchRunsEmitNoFragmentActivity pins the degeneracy the
// refactor promises: a workload whose regions only ever match exactly
// takes the seed code paths — no assemblies counted, no assemble spans.
func TestExactMatchRunsEmitNoFragmentActivity(t *testing.T) {
	_, reg, rec := metricsFixtureRun(t)
	for _, s := range reg.Snapshot() {
		if strings.HasPrefix(s.ID, "coherence_fragment_assemblies{") && s.Value != 0 {
			t.Fatalf("%s = %d on an exact-match workload", s.ID, s.Value)
		}
	}
	var buf bytes.Buffer
	if err := rec.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "assemble") {
		t.Fatal("assemble spans emitted on an exact-match workload")
	}
}
