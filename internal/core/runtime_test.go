package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/bsc-repro/ompss/internal/coherence"
	"github.com/bsc-repro/ompss/internal/hw"
	"github.com/bsc-repro/ompss/internal/memspace"
	"github.com/bsc-repro/ompss/internal/sched"
	"github.com/bsc-repro/ompss/internal/sim"
	"github.com/bsc-repro/ompss/internal/task"
	"github.com/bsc-repro/ompss/internal/trace"
)

// testGPU is a small, fast GPU spec for unit tests.
func testGPU(memBytes uint64) hw.GPUSpec {
	return hw.GPUSpec{
		Name:                 "test-gpu",
		PeakSPFlops:          1e12,
		KernelEfficiency:     0.5,
		MemBandwidth:         100e9,
		MemBytes:             memBytes,
		KernelLaunchOverhead: 5 * time.Microsecond,
		PCIeBandwidth:        5e9,
		PCIeLatency:          10 * time.Microsecond,
		PinnedCopyBandwidth:  10e9,
		Power:                hw.PowerDraw{IdleWatts: 30, BusyWatts: 200},
	}
}

func testNode(gpus int, memBytes uint64) hw.NodeSpec {
	specs := make([]hw.GPUSpec, gpus)
	for i := range specs {
		specs[i] = testGPU(memBytes)
	}
	return hw.NodeSpec{
		Name:             "test-node",
		CPUCores:         8,
		CPUFlops:         5e9,
		HostMemBandwidth: 10e9,
		HostMemBytes:     1 << 34,
		HostPower:        hw.PowerDraw{IdleWatts: 100, BusyWatts: 220},
		GPUs:             specs,
	}
}

func testCluster(nodes, gpusPerNode int, gpuMem uint64) hw.ClusterSpec {
	ns := make([]hw.NodeSpec, nodes)
	for i := range ns {
		ns[i] = testNode(gpusPerNode, gpuMem)
	}
	return hw.ClusterSpec{
		Name:  "test-cluster",
		Nodes: ns,
		Net:   hw.NetSpec{Name: "test-net", Bandwidth: 1e9, Latency: 5 * time.Microsecond, PerMessageOverhead: time.Microsecond},
	}
}

func baseCfg(nodes, gpus int) Config {
	return Config{
		Cluster:          testCluster(nodes, gpus, 1<<26),
		Scheduler:        sched.Dependencies,
		CachePolicy:      coherence.WriteBack,
		NonBlockingCache: true,
		SlaveToSlave:     true,
		Steal:            true,
		Validate:         true,
	}
}

// incWork is a kernel that adds delta to every byte of its region.
type incWork struct {
	r     memspace.Region
	delta byte
	cost  time.Duration
}

func (w incWork) Name() string                      { return "inc" }
func (w incWork) GPUCost(hw.GPUSpec) time.Duration  { return w.cost }
func (w incWork) CPUCost(hw.NodeSpec) time.Duration { return w.cost * 10 }
func (w incWork) Run(store *memspace.Store) {
	if store == nil {
		return
	}
	b := store.Bytes(w.r)
	for i := range b {
		b[i] += w.delta
	}
}

// sumWork writes the elementwise sum of regions a and b into c.
type sumWork struct {
	a, b, c memspace.Region
	cost    time.Duration
}

func (w sumWork) Name() string                      { return "sum" }
func (w sumWork) GPUCost(hw.GPUSpec) time.Duration  { return w.cost }
func (w sumWork) CPUCost(hw.NodeSpec) time.Duration { return w.cost * 10 }
func (w sumWork) Run(store *memspace.Store) {
	if store == nil {
		return
	}
	a, b, c := store.Bytes(w.a), store.Bytes(w.b), store.Bytes(w.c)
	for i := range c {
		c[i] = a[i] + b[i]
	}
}

func inDep(r memspace.Region) task.Dep    { return task.Dep{Region: r, Access: task.In} }
func outDep(r memspace.Region) task.Dep   { return task.Dep{Region: r, Access: task.Out} }
func inoutDep(r memspace.Region) task.Dep { return task.Dep{Region: r, Access: task.InOut} }

func TestSingleGPUTaskRoundTrip(t *testing.T) {
	rt := New(baseCfg(1, 1))
	var result []byte
	stats, err := rt.Run(func(mc *MainCtx) {
		r := mc.Alloc(1024)
		mc.InitSeq(r, func(b []byte) {
			for i := range b {
				b[i] = 10
			}
		})
		mc.Submit(TaskDef{
			Name: "inc", Device: task.CUDA,
			Deps: []task.Dep{inoutDep(r)},
			Work: incWork{r: r, delta: 5, cost: time.Millisecond},
		})
		mc.TaskWait()
		result = append([]byte(nil), mc.HostBytes(r)...)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range result {
		if b != 15 {
			t.Fatalf("byte %d = %d, want 15", i, b)
		}
	}
	if stats.TasksCUDA != 1 {
		t.Fatalf("TasksCUDA = %d", stats.TasksCUDA)
	}
	if stats.BytesH2D != 1024 || stats.BytesD2H != 1024 {
		t.Fatalf("H2D/D2H = %d/%d, want 1024/1024", stats.BytesH2D, stats.BytesD2H)
	}
	if stats.ElapsedSeconds <= 0.001 {
		t.Fatalf("elapsed = %v, kernel cost not accounted", stats.ElapsedSeconds)
	}
}

func TestDependencyChainComputesCorrectly(t *testing.T) {
	rt := New(baseCfg(1, 2))
	var got byte
	_, err := rt.Run(func(mc *MainCtx) {
		a := mc.Alloc(256)
		b := mc.Alloc(256)
		c := mc.Alloc(256)
		mc.InitSeq(a, func(buf []byte) { fill(buf, 3) })
		mc.InitSeq(b, func(buf []byte) { fill(buf, 4) })
		// a += 1 ; b += 2 ; c = a + b  => c = 4 + 6 = 10
		mc.Submit(TaskDef{Name: "incA", Device: task.CUDA,
			Deps: []task.Dep{inoutDep(a)}, Work: incWork{r: a, delta: 1, cost: time.Millisecond}})
		mc.Submit(TaskDef{Name: "incB", Device: task.CUDA,
			Deps: []task.Dep{inoutDep(b)}, Work: incWork{r: b, delta: 2, cost: time.Millisecond}})
		mc.Submit(TaskDef{Name: "sum", Device: task.CUDA,
			Deps: []task.Dep{inDep(a), inDep(b), outDep(c)},
			Work: sumWork{a: a, b: b, c: c, cost: time.Millisecond}})
		mc.TaskWait()
		got = mc.HostBytes(c)[100]
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("c = %d, want 10", got)
	}
}

func fill(b []byte, v byte) {
	for i := range b {
		b[i] = v
	}
}

func TestWriteBackAvoidsRetransfers(t *testing.T) {
	run := func(policy coherence.Policy) Stats {
		cfg := baseCfg(1, 1)
		cfg.CachePolicy = policy
		rt := New(cfg)
		stats, err := rt.Run(func(mc *MainCtx) {
			r := mc.Alloc(1 << 20)
			mc.InitSeq(r, nil)
			for i := 0; i < 10; i++ {
				mc.Submit(TaskDef{Name: fmt.Sprintf("inc%d", i), Device: task.CUDA,
					Deps: []task.Dep{inoutDep(r)},
					Work: incWork{r: r, delta: 1, cost: time.Millisecond}})
			}
			mc.TaskWaitNoflush()
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	wb := run(coherence.WriteBack)
	wt := run(coherence.WriteThrough)
	nc := run(coherence.NoCache)
	// Write-back: one H2D; the only D2H is the implicit end-of-program
	// flush (our explicit wait used noflush).
	if wb.XfersH2D != 1 || wb.XfersD2H != 1 {
		t.Fatalf("wb transfers = %d/%d, want 1/1", wb.XfersH2D, wb.XfersD2H)
	}
	// Write-through: one H2D (cached input), a D2H per task.
	if wt.XfersH2D != 1 || wt.XfersD2H != 10 {
		t.Fatalf("wt transfers = %d/%d, want 1/10", wt.XfersH2D, wt.XfersD2H)
	}
	// No-cache: in and out every task.
	if nc.XfersH2D != 10 || nc.XfersD2H != 10 {
		t.Fatalf("nc transfers = %d/%d, want 10/10", nc.XfersH2D, nc.XfersD2H)
	}
	if !(wb.ElapsedSeconds < wt.ElapsedSeconds && wt.ElapsedSeconds < nc.ElapsedSeconds) {
		t.Fatalf("elapsed ordering wrong: wb=%v wt=%v nc=%v", wb.ElapsedSeconds, wt.ElapsedSeconds, nc.ElapsedSeconds)
	}
}

func TestTaskWaitFlushesDirtyGPUData(t *testing.T) {
	rt := New(baseCfg(1, 1))
	var flushed byte
	stats, err := rt.Run(func(mc *MainCtx) {
		r := mc.Alloc(512)
		mc.InitSeq(r, func(b []byte) { fill(b, 1) })
		mc.Submit(TaskDef{Name: "inc", Device: task.CUDA,
			Deps: []task.Dep{inoutDep(r)}, Work: incWork{r: r, delta: 9, cost: time.Millisecond}})
		mc.TaskWait() // must flush the write-back dirty line
		flushed = mc.HostBytes(r)[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	if flushed != 10 {
		t.Fatalf("host byte = %d, want 10 (flush missing)", flushed)
	}
	if stats.XfersD2H != 1 {
		t.Fatalf("D2H = %d, want exactly 1 (flush)", stats.XfersD2H)
	}
}

func TestSMPTaskSeesGPUOutput(t *testing.T) {
	rt := New(baseCfg(1, 1))
	var got byte
	_, err := rt.Run(func(mc *MainCtx) {
		r := mc.Alloc(128)
		mc.InitSeq(r, func(b []byte) { fill(b, 1) })
		mc.Submit(TaskDef{Name: "gpu-inc", Device: task.CUDA,
			Deps: []task.Dep{inoutDep(r)}, Work: incWork{r: r, delta: 2, cost: time.Millisecond}})
		// The SMP task depends on the GPU task; coherence must flush the
		// GPU's dirty copy to the host before it runs.
		mc.Submit(TaskDef{Name: "cpu-inc", Device: task.SMP,
			Deps: []task.Dep{inoutDep(r)}, Work: incWork{r: r, delta: 4, cost: time.Microsecond}})
		mc.TaskWait()
		got = mc.HostBytes(r)[7]
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("byte = %d, want 7 (1+2+4)", got)
	}
}

func TestIndependentTasksUseBothGPUs(t *testing.T) {
	cfg := baseCfg(1, 2)
	rt := New(cfg)
	stats, err := rt.Run(func(mc *MainCtx) {
		for i := 0; i < 8; i++ {
			r := mc.Alloc(1 << 16)
			mc.InitSeq(r, nil)
			mc.Submit(TaskDef{Name: fmt.Sprintf("t%d", i), Device: task.CUDA,
				Deps: []task.Dep{inoutDep(r)}, Work: incWork{r: r, delta: 1, cost: 10 * time.Millisecond}})
		}
		mc.TaskWaitNoflush()
	})
	if err != nil {
		t.Fatal(err)
	}
	// 8 x 10ms tasks on 2 GPUs: elapsed must be close to 40ms, well below
	// the 80ms serial time.
	if stats.ElapsedSeconds > 0.06 {
		t.Fatalf("elapsed = %v, tasks not parallelized across GPUs", stats.ElapsedSeconds)
	}
	if stats.TasksCUDA != 8 {
		t.Fatalf("tasks = %d", stats.TasksCUDA)
	}
}

func TestRemoteExecutionOnCluster(t *testing.T) {
	cfg := baseCfg(4, 1)
	cfg.Scheduler = sched.BreadthFirst
	rt := New(cfg)
	var results [4]byte
	stats, err := rt.Run(func(mc *MainCtx) {
		var regs [4]memspace.Region
		for i := range regs {
			regs[i] = mc.Alloc(1 << 18)
			mc.InitSeq(regs[i], func(b []byte) { fill(b, byte(i)) })
		}
		for i, r := range regs {
			mc.Submit(TaskDef{Name: fmt.Sprintf("t%d", i), Device: task.CUDA,
				Deps: []task.Dep{inoutDep(r)},
				Work: incWork{r: r, delta: 100, cost: 20 * time.Millisecond}})
		}
		mc.TaskWait()
		for i, r := range regs {
			results[i] = mc.HostBytes(r)[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range results {
		if b != byte(i)+100 {
			t.Fatalf("region %d = %d, want %d", i, b, byte(i)+100)
		}
	}
	if stats.TasksRemote == 0 {
		t.Fatal("no tasks ran remotely on a 4-node cluster")
	}
	if stats.NetBytes == 0 {
		t.Fatal("no network traffic recorded")
	}
	// 4 x 20ms independent tasks across 4 nodes should beat 80ms serial.
	if stats.ElapsedSeconds > 0.07 {
		t.Fatalf("elapsed = %v, no cluster parallelism", stats.ElapsedSeconds)
	}
}

func TestSlaveToSlaveVersusMasterRouted(t *testing.T) {
	run := func(stos bool) Stats {
		cfg := baseCfg(3, 1)
		cfg.Scheduler = sched.Affinity
		cfg.SlaveToSlave = stos
		rt := New(cfg)
		stats, err := rt.Run(func(mc *MainCtx) {
			const n = 6
			var regs [n]memspace.Region
			// Round 1: independent producer tasks spread across the three
			// nodes (fresh output regions have no affinity, so the
			// round-robin communication thread distributes them), leaving
			// each region resident where it ran.
			for i := range regs {
				regs[i] = mc.Alloc(1 << 20)
				mc.Submit(TaskDef{Name: fmt.Sprintf("spread%d", i), Device: task.CUDA,
					Deps: []task.Dep{outDep(regs[i])},
					Work: incWork{r: regs[i], delta: 1, cost: 20 * time.Millisecond}})
			}
			mc.TaskWaitNoflush()
			// Round 2: independent pairs (no WAR chains) — each task also
			// reads its pair's region; the affinity scheduler runs it where
			// its written region lives, so the read region must cross
			// between slaves.
			for i := 0; i < n; i += 2 {
				mc.Submit(TaskDef{Name: fmt.Sprintf("mix%d", i), Device: task.CUDA,
					Deps: []task.Dep{inoutDep(regs[i]), inDep(regs[i+1])},
					Work: incWork{r: regs[i], delta: 1, cost: 5 * time.Millisecond}})
			}
			mc.TaskWait()
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	stos := run(true)
	mtos := run(false)
	if stos.TasksRemote == 0 {
		t.Fatalf("no remote tasks: %+v", stos)
	}
	if stos.BytesStoS == 0 {
		t.Fatalf("StoS run moved no slave-to-slave bytes: %+v", stos)
	}
	if mtos.BytesStoS != 0 {
		t.Fatalf("MtoS run recorded StoS bytes: %+v", mtos)
	}
	if mtos.BytesMtoS <= stos.BytesMtoS {
		t.Fatalf("master-routed bytes should dominate: mtos=%d stos=%d", mtos.BytesMtoS, stos.BytesMtoS)
	}
}

func TestPresendOverlapsTransfersWithRemoteCompute(t *testing.T) {
	run := func(presend int) Stats {
		// The master has no GPU: every CUDA task must run on the single
		// slave, so presend's transfer/compute overlap is isolated.
		cluster := testCluster(2, 1, 1<<26)
		cluster.Nodes[0].GPUs = nil
		cfg := baseCfg(2, 1)
		cfg.Cluster = cluster
		cfg.Scheduler = sched.BreadthFirst
		cfg.Presend = presend
		rt := New(cfg)
		stats, err := rt.Run(func(mc *MainCtx) {
			for i := 0; i < 12; i++ {
				r := mc.Alloc(4 << 20) // 4 MB -> ~4ms on the wire
				mc.InitSeq(r, nil)
				mc.Submit(TaskDef{Name: fmt.Sprintf("t%d", i), Device: task.CUDA,
					Deps: []task.Dep{inoutDep(r)},
					Work: incWork{r: r, delta: 1, cost: 5 * time.Millisecond}})
			}
			mc.TaskWaitNoflush()
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	none := run(0)
	two := run(2)
	if none.Presends != 0 {
		t.Fatalf("presend=0 recorded %d presends", none.Presends)
	}
	if two.Presends == 0 {
		t.Fatal("presend=2 recorded no presends")
	}
	// Without presend each remote task serializes wire + PCIe + kernel;
	// with presend the staging of the next tasks overlaps computation.
	if two.ElapsedSeconds >= none.ElapsedSeconds*0.85 {
		t.Fatalf("presend gave no overlap win: %v vs %v", two.ElapsedSeconds, none.ElapsedSeconds)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Stats, uint64) {
		cfg := baseCfg(2, 2)
		cfg.Scheduler = sched.Affinity
		rt := New(cfg)
		var sum uint64
		stats, err := rt.Run(func(mc *MainCtx) {
			var regs []memspace.Region
			for i := 0; i < 6; i++ {
				r := mc.Alloc(4096)
				mc.InitSeq(r, func(b []byte) { fill(b, byte(i)) })
				regs = append(regs, r)
			}
			for round := 0; round < 3; round++ {
				for i, r := range regs {
					mc.Submit(TaskDef{Name: fmt.Sprintf("r%dt%d", round, i), Device: task.CUDA,
						Deps: []task.Dep{inoutDep(r)},
						Work: incWork{r: r, delta: 1, cost: time.Duration(i+1) * time.Millisecond}})
				}
			}
			mc.TaskWait()
			for _, r := range regs {
				b := mc.HostBytes(r)
				sum += uint64(binary.LittleEndian.Uint32(b[:4]))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats, sum
	}
	s1, sum1 := run()
	s2, sum2 := run()
	if fmt.Sprintf("%+v", s1) != fmt.Sprintf("%+v", s2) {
		t.Fatalf("stats diverged:\n%+v\nvs\n%+v", s1, s2)
	}
	if sum1 != sum2 {
		t.Fatalf("results diverged: %d vs %d", sum1, sum2)
	}
}

func TestTaskWaitOn(t *testing.T) {
	rt := New(baseCfg(1, 1))
	_, err := rt.Run(func(mc *MainCtx) {
		a := mc.Alloc(128)
		b := mc.Alloc(128)
		mc.InitSeq(a, func(buf []byte) { fill(buf, 1) })
		mc.InitSeq(b, func(buf []byte) { fill(buf, 1) })
		mc.Submit(TaskDef{Name: "fast", Device: task.CUDA,
			Deps: []task.Dep{inoutDep(a)}, Work: incWork{r: a, delta: 1, cost: time.Millisecond}})
		mc.Submit(TaskDef{Name: "slow", Device: task.CUDA,
			Deps: []task.Dep{inoutDep(b)}, Work: incWork{r: b, delta: 1, cost: 50 * time.Millisecond}})
		before := mc.Now()
		mc.TaskWaitOn(a)
		waited := mc.Now() - before
		if got := mc.HostBytes(a)[0]; got != 2 {
			t.Errorf("a = %d after TaskWaitOn, want 2", got)
		}
		// Must not have waited for the slow task.
		if waited.Seconds() > 0.04 {
			t.Errorf("TaskWaitOn(a) waited %v, appears to block on unrelated task", waited)
		}
		mc.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAffinityReducesTrafficVersusBF(t *testing.T) {
	run := func(policy sched.Policy) Stats {
		cfg := baseCfg(1, 4)
		cfg.Scheduler = policy
		rt := New(cfg)
		stats, err := rt.Run(func(mc *MainCtx) {
			// 8 independent chains; locality-aware scheduling keeps each
			// chain on the GPU holding its data.
			var regs []memspace.Region
			for i := 0; i < 8; i++ {
				r := mc.Alloc(1 << 22) // 4 MB
				mc.InitSeq(r, nil)
				regs = append(regs, r)
			}
			for round := 0; round < 6; round++ {
				for i, r := range regs {
					// Skewed costs so chain completions interleave and a
					// FIFO scheduler scrambles chain-to-GPU assignment.
					cost := time.Duration(1+(i*7+round*3)%5) * time.Millisecond
					mc.Submit(TaskDef{Name: fmt.Sprintf("c%dr%d", i, round), Device: task.CUDA,
						Deps: []task.Dep{inoutDep(r)},
						Work: incWork{r: r, delta: 1, cost: cost}})
				}
			}
			mc.TaskWaitNoflush()
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	aff := run(sched.Affinity)
	bf := run(sched.BreadthFirst)
	if aff.BytesH2D >= bf.BytesH2D {
		t.Fatalf("affinity H2D %d not below breadth-first %d", aff.BytesH2D, bf.BytesH2D)
	}
}

func TestTraceRecordsTimeline(t *testing.T) {
	cfg := baseCfg(2, 1)
	rec := trace.New()
	cfg.Trace = rec
	rt := New(cfg)
	stats, err := rt.Run(func(mc *MainCtx) {
		for i := 0; i < 4; i++ {
			r := mc.Alloc(1 << 18)
			mc.InitSeq(r, nil)
			mc.Submit(TaskDef{Name: fmt.Sprintf("t%d", i), Device: task.CUDA,
				Deps: []task.Dep{inoutDep(r)},
				Work: incWork{r: r, delta: 1, cost: 5 * time.Millisecond}})
		}
		mc.Submit(TaskDef{Name: "cpu", Device: task.SMP,
			Deps: []task.Dep{}, Work: incWork{r: memspace.Region{}, cost: time.Millisecond}})
		mc.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	var taskRuns, h2d, net int
	for _, s := range rec.Spans() {
		if s.End < s.Start {
			t.Fatalf("bad span %+v", s)
		}
		switch s.Kind {
		case trace.TaskRun:
			taskRuns++
		case trace.XferH2D:
			h2d++
		case trace.NetSend:
			net++
		}
	}
	if taskRuns != stats.TasksCUDA+stats.TasksSMP {
		t.Fatalf("task spans %d != executed tasks %d", taskRuns, stats.TasksCUDA+stats.TasksSMP)
	}
	if h2d != stats.XfersH2D {
		t.Fatalf("h2d spans %d != stat %d", h2d, stats.XfersH2D)
	}
	if stats.TasksRemote > 0 && net == 0 {
		t.Fatal("remote tasks ran but no net spans recorded")
	}
	busy := rec.BusyTime()
	if len(busy) == 0 {
		t.Fatal("no busy rows")
	}
	var sb strings.Builder
	if err := rec.Gantt(&sb, 60); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "#") {
		t.Fatalf("gantt has no execution marks:\n%s", sb.String())
	}
}

func TestMultipleCommThreads(t *testing.T) {
	run := func(threads int) Stats {
		cfg := baseCfg(5, 1)
		cfg.Scheduler = sched.BreadthFirst
		cfg.CommThreads = threads
		cfg.Presend = 1
		rt := New(cfg)
		stats, err := rt.Run(func(mc *MainCtx) {
			for i := 0; i < 20; i++ {
				r := mc.Alloc(1 << 20)
				mc.Submit(TaskDef{Name: fmt.Sprintf("t%d", i), Device: task.CUDA,
					Deps: []task.Dep{outDep(r)},
					Work: incWork{r: r, delta: 1, cost: 8 * time.Millisecond}})
			}
			mc.TaskWaitNoflush()
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	one := run(1)
	three := run(3)
	// Same total work either way, and every node participates.
	if one.TasksCUDA != 20 || three.TasksCUDA != 20 {
		t.Fatalf("tasks = %d / %d", one.TasksCUDA, three.TasksCUDA)
	}
	for i, c := range three.TasksPerNode {
		if c == 0 {
			t.Fatalf("node %d starved with 3 comm threads: %v", i, three.TasksPerNode)
		}
	}
	// With several threads the dispatch control path is not slower.
	if three.ElapsedSeconds > one.ElapsedSeconds*1.2 {
		t.Fatalf("3 comm threads slower: %v vs %v", three.ElapsedSeconds, one.ElapsedSeconds)
	}
}

func TestOverlapPlusPrefetchHidesTransfers(t *testing.T) {
	// The paper: prefetch "is more effective when combined with the
	// overlapping of data transfers and computation".
	run := func(overlap, prefetch bool) float64 {
		cfg := baseCfg(1, 1)
		cfg.Validate = false
		cfg.Overlap = overlap
		cfg.Prefetch = prefetch
		rt := New(cfg)
		var elapsed float64
		_, err := rt.Run(func(mc *MainCtx) {
			start := mc.Now()
			for i := 0; i < 16; i++ {
				r := mc.Alloc(8 << 20) // 8 MB: ~1.6ms PCIe
				mc.InitSeq(r, nil)
				mc.Submit(TaskDef{Name: fmt.Sprintf("t%d", i), Device: task.CUDA,
					Deps: []task.Dep{inoutDep(r)},
					Work: incWork{r: r, delta: 1, cost: 2 * time.Millisecond}})
			}
			mc.TaskWaitNoflush()
			elapsed = (mc.Now() - start).Seconds()
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	plain := run(false, false)
	both := run(true, true)
	// The win is bounded by eviction writebacks sharing the wire in this
	// tight configuration; it must exist (the full-size ablation benchmark
	// shows the larger effect).
	if both >= plain*0.93 {
		t.Fatalf("overlap+prefetch gave no win: %v vs %v", both, plain)
	}
}

func TestBlockingCacheSerializesInputTransfers(t *testing.T) {
	run := func(nonblocking bool) float64 {
		cfg := baseCfg(1, 1)
		cfg.Validate = false
		cfg.NonBlockingCache = nonblocking
		cfg.Overlap = true // independent DMA engines let concurrent fetches pipeline
		rt := New(cfg)
		stats, err := rt.Run(func(mc *MainCtx) {
			// One task with many inputs: the non-blocking cache issues the
			// fetches concurrently.
			var deps []task.Dep
			for i := 0; i < 8; i++ {
				r := mc.Alloc(4 << 20)
				mc.InitSeq(r, nil)
				deps = append(deps, inDep(r))
			}
			out := mc.Alloc(1 << 10)
			deps = append(deps, outDep(out))
			mc.Submit(TaskDef{Name: "many-in", Device: task.CUDA, Deps: deps,
				Work: task.FixedWork{Label: "k", GPUTime: time.Millisecond}})
			mc.TaskWaitNoflush()
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.ElapsedSeconds
	}
	blocking := run(false)
	nonblocking := run(true)
	// With one H2D engine the wire time is the same; the win is bounded
	// but real (staging latencies overlap). At minimum it must not lose.
	if nonblocking > blocking {
		t.Fatalf("non-blocking cache slower: %v vs %v", nonblocking, blocking)
	}
}

func TestNestedTasksOnSlaveNodes(t *testing.T) {
	// One parent task per node decomposes its region into nested subtasks
	// executed locally — the paper's scalable data decomposition.
	cfg := baseCfg(3, 1)
	cfg.Scheduler = sched.BreadthFirst
	rt := New(cfg)
	const parts = 4
	var regions [3][parts]memspace.Region
	stats, err := rt.Run(func(mc *MainCtx) {
		for nodeish := 0; nodeish < 3; nodeish++ {
			nodeish := nodeish
			var deps []task.Dep
			for j := 0; j < parts; j++ {
				regions[nodeish][j] = mc.Alloc(4096)
				deps = append(deps, outDep(regions[nodeish][j]))
			}
			mc.Submit(TaskDef{
				Name: fmt.Sprintf("parent%d", nodeish), Device: task.SMP,
				Deps: deps,
				Work: task.FixedWork{Label: "parent", CPUTime: time.Millisecond},
				Spawner: func(lcI interface{}) {
					lc := lcI.(*LocalCtx)
					for j := 0; j < parts; j++ {
						r := regions[nodeish][j]
						lc.Submit(TaskDef{
							Name: fmt.Sprintf("child%d.%d", nodeish, j), Device: task.CUDA,
							Deps: []task.Dep{inoutDep(r)},
							Work: incWork{r: r, delta: byte(nodeish + 1), cost: 2 * time.Millisecond},
						})
					}
					lc.Wait()
				},
			})
		}
		mc.TaskWait()
		for nodeish := 0; nodeish < 3; nodeish++ {
			for j := 0; j < parts; j++ {
				b := mc.HostBytes(regions[nodeish][j])
				if b[0] != byte(nodeish+1) {
					t.Errorf("region %d.%d = %d, want %d", nodeish, j, b[0], nodeish+1)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Children execute where the parent ran: CUDA task count is parents'
	// children only, and at least one parent ran remotely.
	if stats.TasksCUDA != 3*parts {
		t.Fatalf("TasksCUDA = %d, want %d", stats.TasksCUDA, 3*parts)
	}
	if stats.TasksRemote == 0 {
		t.Fatal("no parent ran remotely")
	}
}

func TestNestedTasksRespectLocalDependences(t *testing.T) {
	cfg := baseCfg(1, 1)
	rt := New(cfg)
	var r memspace.Region
	_, err := rt.Run(func(mc *MainCtx) {
		r = mc.Alloc(64)
		mc.Submit(TaskDef{
			Name: "parent", Device: task.SMP,
			Deps: []task.Dep{outDep(r)},
			Work: task.NoWork{},
			Spawner: func(lcI interface{}) {
				lc := lcI.(*LocalCtx)
				// A chain: each child doubles then adds; order matters.
				lc.Submit(TaskDef{Name: "set", Device: task.CUDA,
					Deps: []task.Dep{outDep(r)},
					Work: incWork{r: r, delta: 3, cost: time.Millisecond}})
				lc.Submit(TaskDef{Name: "add", Device: task.CUDA,
					Deps: []task.Dep{inoutDep(r)},
					Work: incWork{r: r, delta: 4, cost: time.Millisecond}})
				lc.Wait()
			},
		})
		mc.TaskWait()
		if got := mc.HostBytes(r)[0]; got != 7 {
			t.Errorf("r = %d, want 7", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGPUParentSpawnerDoesNotDeadlockSingleGPU(t *testing.T) {
	cfg := baseCfg(1, 1) // one GPU: parent and children share the manager
	rt := New(cfg)
	_, err := rt.Run(func(mc *MainCtx) {
		r := mc.Alloc(64)
		mc.Submit(TaskDef{
			Name: "gpu-parent", Device: task.CUDA,
			Deps: []task.Dep{outDep(r)},
			Work: incWork{r: r, delta: 1, cost: time.Millisecond},
			Spawner: func(lcI interface{}) {
				lc := lcI.(*LocalCtx)
				lc.Submit(TaskDef{Name: "gpu-child", Device: task.CUDA,
					Deps: []task.Dep{inoutDep(r)},
					Work: incWork{r: r, delta: 2, cost: time.Millisecond}})
				lc.Wait()
			},
		})
		mc.TaskWait()
		if got := mc.HostBytes(r)[0]; got != 3 {
			t.Errorf("r = %d, want 3", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidationPanics(t *testing.T) {
	mustPanicCore(t, func() { New(Config{}) })                                               // no nodes
	mustPanicCore(t, func() { New(Config{Cluster: testCluster(1, 1, 1<<20), Presend: -1}) }) // negative presend
}

func mustPanicCore(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestCUDATaskWithoutGPUsPanicsAtSubmit(t *testing.T) {
	cluster := testCluster(1, 1, 1<<20)
	cluster.Nodes[0].GPUs = nil
	rt := New(Config{Cluster: cluster})
	panicked := false
	_, _ = rt.Run(func(mc *MainCtx) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		mc.Submit(TaskDef{Name: "gpu", Device: task.CUDA, Work: task.NoWork{}})
	})
	if !panicked {
		t.Fatal("expected panic for CUDA task on GPU-less machine")
	}
}

func TestWriteThroughOnCluster(t *testing.T) {
	// Write-through on a cluster: every remote GPU write is propagated to
	// the slave host, so the master can pull without a D2H on the fetch
	// path; results stay correct.
	cfg := baseCfg(2, 1)
	cfg.CachePolicy = coherence.WriteThrough
	rt := New(cfg)
	var got byte
	_, err := rt.Run(func(mc *MainCtx) {
		r := mc.Alloc(512)
		mc.Submit(TaskDef{Name: "produce", Device: task.CUDA,
			Deps: []task.Dep{outDep(r)},
			Work: incWork{r: r, delta: 9, cost: 20 * time.Millisecond}})
		mc.TaskWait()
		got = mc.HostBytes(r)[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Fatalf("byte = %d, want 9", got)
	}
}

func TestMtoSRoutingWhenStoSDisabled(t *testing.T) {
	// A region produced on slave 1 and needed on slave 2 must route via
	// the master when SlaveToSlave is off, updating both counters and the
	// master's own copy.
	cfg := baseCfg(3, 1)
	cfg.Scheduler = sched.Affinity
	cfg.SlaveToSlave = false
	rt := New(cfg)
	var got byte
	stats, err := rt.Run(func(mc *MainCtx) {
		a := mc.Alloc(1 << 20)
		b := mc.Alloc(1 << 20)
		// Producers spread over the slaves.
		mc.Submit(TaskDef{Name: "prodA", Device: task.CUDA,
			Deps: []task.Dep{outDep(a)}, Work: incWork{r: a, delta: 3, cost: 10 * time.Millisecond}})
		mc.Submit(TaskDef{Name: "prodB", Device: task.CUDA,
			Deps: []task.Dep{outDep(b)}, Work: incWork{r: b, delta: 4, cost: 10 * time.Millisecond}})
		mc.TaskWaitNoflush()
		// A consumer reading both: wherever it runs, one region crosses.
		mc.Submit(TaskDef{Name: "mix", Device: task.CUDA,
			Deps: []task.Dep{inoutDep(a), inDep(b)},
			Work: incWork{r: a, delta: 1, cost: 5 * time.Millisecond}})
		mc.TaskWait()
		got = mc.HostBytes(a)[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("a = %d, want 4", got)
	}
	if stats.BytesStoS != 0 {
		t.Fatalf("StoS bytes %d with SlaveToSlave disabled", stats.BytesStoS)
	}
}

func TestOversizedWorkingSetReturnsError(t *testing.T) {
	cfg := baseCfg(1, 1) // 64 MB test GPU
	rt := New(cfg)
	_, err := rt.Run(func(mc *MainCtx) {
		r := mc.Alloc(1 << 28) // 256 MB: cannot fit the 64 MB device
		mc.InitSeq(r, nil)
		mc.Submit(TaskDef{Name: "huge", Device: task.CUDA,
			Deps: []task.Dep{inoutDep(r)},
			Work: incWork{r: r, delta: 1, cost: time.Millisecond}})
		mc.TaskWaitNoflush()
	})
	var pp *sim.ProcPanicError
	if !errors.As(err, &pp) {
		t.Fatalf("err = %v, want ProcPanicError about the working set", err)
	}
	if !strings.Contains(fmt.Sprint(pp.Value), "does not fit") {
		t.Fatalf("panic value = %v", pp.Value)
	}
}

func TestReductionInCorePackage(t *testing.T) {
	// Exercises the reduction machinery (staging, partials, combine)
	// directly at the core level.
	cfg := baseCfg(1, 2)
	rt := New(cfg)
	if rt.String() == "" || rt.Engine() == nil || rt.Config().Cluster.Name == "" {
		t.Fatal("accessors broken")
	}
	var got byte
	_, err := rt.Run(func(mc *MainCtx) {
		acc := mc.Alloc(64)
		mc.InitSeq(acc, func(b []byte) { fill(b, 1) })
		sum := func(a, p []byte) {
			for i := range a {
				a[i] += p[i]
			}
		}
		for i := 0; i < 4; i++ {
			mc.Submit(TaskDef{Name: fmt.Sprintf("red%d", i), Device: task.CUDA,
				Deps:       []task.Dep{{Region: acc, Access: task.Red}},
				Reductions: map[uint64]task.Combiner{acc.Addr: sum},
				Work:       incWork{r: acc, delta: 2, cost: time.Millisecond}})
		}
		mc.TaskWait()
		got = mc.HostBytes(acc)[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 { // 1 initial + 4 partials of 2
		t.Fatalf("acc = %d, want 9", got)
	}
}

func TestUtilizationAndStatsAccessors(t *testing.T) {
	s := Stats{ElapsedSeconds: 2, KernelBusySeconds: 2}
	if s.Utilization(1) != 1 || s.Utilization(0) != 0 {
		t.Fatal("Utilization")
	}
}
