package core

import (
	"fmt"
	goruntime "runtime"
	"testing"
	"time"

	"github.com/bsc-repro/ompss/internal/faults"
	"github.com/bsc-repro/ompss/internal/memspace"
	"github.com/bsc-repro/ompss/internal/sched"
	"github.com/bsc-repro/ompss/internal/task"
	"github.com/bsc-repro/ompss/internal/trace"
)

// runFaulted executes rounds of inout inc tasks over regions spread across
// the cluster and returns the stats plus the first byte of every region
// (each must equal rounds, whatever the injector did to the wire).
func runFaulted(t *testing.T, cfg Config, regions, rounds int, cost time.Duration) (Stats, []byte) {
	t.Helper()
	results := make([]byte, regions)
	stats, err := New(cfg).Run(func(mc *MainCtx) {
		regs := make([]memspace.Region, regions)
		for i := range regs {
			regs[i] = mc.Alloc(1 << 18)
			mc.InitSeq(regs[i], func(b []byte) { fill(b, 0) })
		}
		for round := 0; round < rounds; round++ {
			for i, r := range regs {
				mc.Submit(TaskDef{Name: fmt.Sprintf("r%dt%d", round, i), Device: task.CUDA,
					Deps: []task.Dep{inoutDep(r)},
					Work: incWork{r: r, delta: 1, cost: cost}})
			}
		}
		mc.TaskWait()
		for i, r := range regs {
			results[i] = mc.HostBytes(r)[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return stats, results
}

func checkAll(t *testing.T, results []byte, want byte) {
	t.Helper()
	for i, b := range results {
		if b != want {
			t.Fatalf("region %d = %d, want %d", i, b, want)
		}
	}
}

func faultedCfg(nodes int, plan *faults.Plan) Config {
	cfg := baseCfg(nodes, 1)
	cfg.Scheduler = sched.BreadthFirst
	cfg.Faults = plan
	return cfg
}

func TestResilienceSurvivesMessageDrops(t *testing.T) {
	cfg := faultedCfg(4, &faults.Plan{Seed: 42, DropRate: 0.01})
	stats, results := runFaulted(t, cfg, 8, 3, 10*time.Millisecond)
	checkAll(t, results, 3)
	if stats.FaultDropsInjected == 0 {
		t.Fatal("drop plan injected nothing; raise traffic or rate")
	}
	if stats.NetRetries == 0 {
		t.Fatal("messages were dropped but nothing was retried")
	}
	if stats.DeadNodes != 0 {
		t.Fatalf("random drops killed %d nodes", stats.DeadNodes)
	}
}

func TestResilienceRecoversFromCrashedSlave(t *testing.T) {
	rec := trace.New()
	cfg := faultedCfg(8, &faults.Plan{
		Seed:    7,
		Crashes: []faults.Crash{{Node: 3, At: 30 * time.Millisecond}},
	})
	cfg.Trace = rec
	stats, results := runFaulted(t, cfg, 16, 3, 10*time.Millisecond)
	checkAll(t, results, 3)
	if stats.DeadNodes != 1 {
		t.Fatalf("DeadNodes = %d, want 1", stats.DeadNodes)
	}
	if stats.TasksReexecuted == 0 {
		t.Fatal("a mid-run crash re-executed no tasks")
	}
	if stats.RecoverySeconds <= 0 {
		t.Fatalf("RecoverySeconds = %v, want > 0", stats.RecoverySeconds)
	}
	var recovery, heartbeat int
	for _, s := range rec.Spans() {
		switch s.Kind {
		case trace.Recovery:
			recovery++
		case trace.Heartbeat:
			heartbeat++
		}
	}
	if recovery == 0 {
		t.Fatal("no Recovery spans in the trace")
	}
	if heartbeat == 0 {
		t.Fatal("no Heartbeat miss spans in the trace")
	}
}

func TestResilienceStallBelowPatienceIsNotACrash(t *testing.T) {
	// Patience is MissThreshold(5) x HeartbeatInterval(100us) = 500us; a
	// 300us stall must cause retries at most, never an exclusion.
	cfg := faultedCfg(4, &faults.Plan{
		Seed:   3,
		Stalls: []faults.Stall{{Node: 2, At: 10 * time.Millisecond, Duration: 300 * time.Microsecond}},
	})
	stats, results := runFaulted(t, cfg, 8, 3, 10*time.Millisecond)
	checkAll(t, results, 3)
	if stats.DeadNodes != 0 {
		t.Fatalf("transient stall excluded %d nodes", stats.DeadNodes)
	}
}

func TestResilienceStallPastPatienceExcludesNode(t *testing.T) {
	// A 2ms freeze blows through the 500us patience: the failure detector
	// must declare the node dead and the run must still finish correctly.
	cfg := faultedCfg(4, &faults.Plan{
		Seed:   3,
		Stalls: []faults.Stall{{Node: 2, At: 10 * time.Millisecond, Duration: 2 * time.Millisecond}},
	})
	stats, results := runFaulted(t, cfg, 8, 3, 10*time.Millisecond)
	checkAll(t, results, 3)
	if stats.DeadNodes != 1 {
		t.Fatalf("DeadNodes = %d, want 1 (stall outlived the detector's patience)", stats.DeadNodes)
	}
	if stats.HeartbeatMisses == 0 {
		t.Fatal("node was excluded without any recorded heartbeat miss")
	}
}

func TestResilienceSameSeedReplaysBitIdentically(t *testing.T) {
	run := func() (Stats, []byte) {
		cfg := faultedCfg(8, &faults.Plan{
			Seed:     99,
			DropRate: 0.005,
			Crashes:  []faults.Crash{{Node: 5, At: 25 * time.Millisecond}},
		})
		return runFaulted(t, cfg, 16, 3, 10*time.Millisecond)
	}
	s1, r1 := run()
	s2, r2 := run()
	if fmt.Sprintf("%+v", s1) != fmt.Sprintf("%+v", s2) {
		t.Fatalf("stats diverged across identical fault plans:\n%+v\nvs\n%+v", s1, s2)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("results diverged at region %d: %d vs %d", i, r1[i], r2[i])
		}
	}
}

func TestResilienceZeroFaultPlanOverheadBounded(t *testing.T) {
	// A zero plan arms acks, retries and heartbeats without injecting
	// anything; a nil Faults disables the subsystem entirely. The armed run
	// must stay correct, kill nothing, and cost only protocol overhead.
	nilCfg := faultedCfg(4, nil)
	nilStats, nilResults := runFaulted(t, nilCfg, 8, 3, 10*time.Millisecond)
	checkAll(t, nilResults, 3)
	if nilStats.NetRetries != 0 || nilStats.DeadNodes != 0 || nilStats.HeartbeatMisses != 0 ||
		nilStats.FaultDropsInjected != 0 || nilStats.TasksReexecuted != 0 {
		t.Fatalf("nil Faults left nonzero fault counters: %+v", nilStats)
	}

	armedCfg := faultedCfg(4, &faults.Plan{Seed: 1})
	armedStats, armedResults := runFaulted(t, armedCfg, 8, 3, 10*time.Millisecond)
	checkAll(t, armedResults, 3)
	if armedStats.DeadNodes != 0 || armedStats.FaultDropsInjected != 0 {
		t.Fatalf("zero-fault plan injected or killed something: %+v", armedStats)
	}
	if armedStats.ElapsedSeconds > nilStats.ElapsedSeconds*1.05 {
		t.Fatalf("armed zero-fault overhead too high: %v vs %v",
			armedStats.ElapsedSeconds, nilStats.ElapsedSeconds)
	}
}

func TestResilienceCrashRunLeaksNoGoroutines(t *testing.T) {
	before := goruntime.NumGoroutine()
	cfg := faultedCfg(8, &faults.Plan{
		Seed:    7,
		Crashes: []faults.Crash{{Node: 3, At: 30 * time.Millisecond}},
	})
	_, results := runFaulted(t, cfg, 16, 3, 10*time.Millisecond)
	checkAll(t, results, 3)
	// Engine goroutines wind down asynchronously after Run returns; give
	// them a moment before declaring a leak. The wait is an Eventually-
	// style bounded retry (the pattern detwallclock teaches) rather than
	// time.Now deadline arithmetic: the retry budget is explicit, and no
	// wall-clock reads leak into the condition being tested.
	settled := eventually(200, 10*time.Millisecond, func() bool {
		goruntime.GC()
		return goruntime.NumGoroutine() <= before
	})
	if !settled {
		buf := make([]byte, 1<<16)
		n := goruntime.Stack(buf, true)
		t.Fatalf("goroutines leaked: %d before, %d after\n%s",
			before, goruntime.NumGoroutine(), buf[:n])
	}
}

// eventually polls cond up to attempts times, pausing interval between
// tries, and reports whether cond ever held.
func eventually(attempts int, interval time.Duration, cond func() bool) bool {
	for i := 0; i < attempts; i++ {
		if cond() {
			return true
		}
		time.Sleep(interval)
	}
	return cond()
}
