// Package gasnet provides a GASNet-style active-message layer on top of the
// netsim fabric. Each node owns an Endpoint with a registry of named
// handlers; AMShort carries only control arguments, AMMedium carries an
// opaque payload size, and AMLong additionally delivers the bytes of a
// program region into the destination node's host store. The Nanos++
// cluster dependent layer implements all control and data traffic with
// these primitives, as the paper's implementation does (Section III.D.1).
package gasnet

import (
	"fmt"

	"github.com/bsc-repro/ompss/internal/memspace"
	"github.com/bsc-repro/ompss/internal/netsim"
	"github.com/bsc-repro/ompss/internal/sim"
)

// headerBytes is the modeled wire size of AM headers and control arguments.
const headerBytes = 64

// AM is a delivered active message as seen by a handler.
type AM struct {
	From    int
	To      int
	Handler string
	Args    interface{}
	// Region and payload size for AMLong/AMMedium; zero Region for AMShort.
	Region memspace.Region
	Bytes  uint64
}

// Handler processes one delivered active message. Handlers run in their own
// simulation process and may block, issue further AMs, or reply.
type Handler func(p *sim.Proc, am AM)

type wireAM struct {
	am       AM
	srcStore *memspace.Store // for AMLong byte delivery
}

// Endpoint is one node's attachment to the fabric.
type Endpoint struct {
	f        *netsim.Fabric
	node     int
	handlers map[string]Handler
	store    *memspace.Store // host store of this node; may be nil
	started  bool
}

// NewEndpoint returns an endpoint for node on fabric f. store is the node's
// host backing store (nil in cost-only mode).
func NewEndpoint(f *netsim.Fabric, node int, store *memspace.Store) *Endpoint {
	return &Endpoint{f: f, node: node, handlers: make(map[string]Handler), store: store}
}

// Node returns this endpoint's node id.
func (ep *Endpoint) Node() int { return ep.node }

// Store returns this endpoint's host store.
func (ep *Endpoint) Store() *memspace.Store { return ep.store }

// Register installs handler h under name. Must be called before Start.
func (ep *Endpoint) Register(name string, h Handler) {
	if ep.started {
		panic("gasnet: Register after Start")
	}
	if _, dup := ep.handlers[name]; dup {
		panic("gasnet: duplicate handler " + name)
	}
	ep.handlers[name] = h
}

// Start launches the endpoint's dispatcher process, which pulls delivered
// messages off the fabric inbox and spawns a handler process for each.
// AMLong payload bytes land in the destination host store just before the
// handler runs.
func (ep *Endpoint) Start(e *sim.Engine) {
	if ep.started {
		panic("gasnet: double Start")
	}
	ep.started = true
	inbox := ep.f.Iface(ep.node).Inbox()
	e.Go(fmt.Sprintf("gasnet:dispatch:%d", ep.node), func(p *sim.Proc) {
		for {
			msg, ok := inbox.Get(p)
			if !ok {
				return
			}
			w, isAM := msg.Payload.(wireAM)
			if !isAM {
				panic(fmt.Sprintf("gasnet: foreign message on node %d inbox", ep.node))
			}
			h, known := ep.handlers[w.am.Handler]
			if !known {
				panic(fmt.Sprintf("gasnet: node %d has no handler %q", ep.node, w.am.Handler))
			}
			if w.am.Region.Valid() && w.srcStore != nil {
				memspace.CopyRegion(ep.store, w.srcStore, w.am.Region)
			}
			am := w.am
			e.Go(fmt.Sprintf("gasnet:h:%s@%d", am.Handler, ep.node), func(hp *sim.Proc) {
				h(hp, am)
			})
		}
	})
}

// Shutdown closes the endpoint's inbox, terminating its dispatcher once
// drained.
func (ep *Endpoint) Shutdown() {
	ep.f.Iface(ep.node).Inbox().Close()
}

// AMShort sends a control-only active message; the caller blocks for the
// sender-side cost.
func (ep *Endpoint) AMShort(p *sim.Proc, to int, handler string, args interface{}) {
	ep.send(p, to, handler, args, memspace.Region{}, 0)
}

// AMMedium sends an active message carrying bytes of opaque payload.
func (ep *Endpoint) AMMedium(p *sim.Proc, to int, handler string, args interface{}, bytes uint64) {
	ep.send(p, to, handler, args, memspace.Region{}, bytes)
}

// AMLong sends an active message carrying the bytes of region r from this
// node's host store into the destination's host store.
func (ep *Endpoint) AMLong(p *sim.Proc, to int, handler string, args interface{}, r memspace.Region) {
	ep.send(p, to, handler, args, r, r.Size)
}

// AMLongAsync is AMLong initiated from a spawned process; the returned
// event triggers when the message has been delivered.
func (ep *Endpoint) AMLongAsync(to int, handler string, args interface{}, r memspace.Region) *sim.Event {
	return ep.f.SendAsync(netsim.Message{
		From: ep.node, To: to, Size: headerBytes + r.Size,
		Payload: wireAM{
			am:       AM{From: ep.node, To: to, Handler: handler, Args: args, Region: r, Bytes: r.Size},
			srcStore: ep.store,
		},
	})
}

func (ep *Endpoint) send(p *sim.Proc, to int, handler string, args interface{}, r memspace.Region, bytes uint64) {
	ep.f.Send(p, netsim.Message{
		From: ep.node, To: to, Size: headerBytes + bytes,
		Payload: wireAM{
			am:       AM{From: ep.node, To: to, Handler: handler, Args: args, Region: r, Bytes: bytes},
			srcStore: ep.store,
		},
	})
}
