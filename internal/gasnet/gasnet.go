// Package gasnet provides a GASNet-style active-message layer on top of the
// netsim fabric. Each node owns an Endpoint with a registry of named
// handlers; AMShort carries only control arguments, AMMedium carries an
// opaque payload size, and AMLong additionally delivers the bytes of a
// program region into the destination node's host store. The Nanos++
// cluster dependent layer implements all control and data traffic with
// these primitives, as the paper's implementation does (Section III.D.1).
package gasnet

import (
	"fmt"

	"github.com/bsc-repro/ompss/internal/memspace"
	"github.com/bsc-repro/ompss/internal/metrics"
	"github.com/bsc-repro/ompss/internal/netsim"
	"github.com/bsc-repro/ompss/internal/sim"
)

// headerBytes is the modeled wire size of AM headers and control arguments.
const headerBytes = 64

// ackBytes is the modeled wire size of a reliability acknowledgment.
const ackBytes = 16

// ackHandler is the reserved handler name of wire-level acks. They are
// consumed by the dispatcher itself and never reach user handlers.
const ackHandler = "__gasnet_ack"

// AM is a delivered active message as seen by a handler.
type AM struct {
	From    int
	To      int
	Handler string
	Args    interface{}
	// Region and payload size for AMLong/AMMedium; zero Region for AMShort.
	Region memspace.Region
	Bytes  uint64
}

// Handler processes one delivered active message. Handlers run in their own
// simulation process and may block, issue further AMs, or reply.
type Handler func(p *sim.Proc, am AM)

type wireAM struct {
	am       AM
	srcStore *memspace.Store // for AMLong byte delivery

	// Reliability envelope: seq is a per-(sender,destination) sequence
	// number; needAck asks the receiving dispatcher to send a wire-level
	// ack and dedup on (sender, seq).
	seq     uint64
	needAck bool
}

// Reliability configures the ack/timeout/retry layer of an endpoint. With
// it enabled, AMShort/AMMedium/AMLong retransmit until acknowledged (with
// exponential backoff) and report success; receivers acknowledge and
// deduplicate by sequence number, so handlers still run exactly once per
// logical message even when the wire drops packets or delivers late
// duplicates.
type Reliability struct {
	// AckTimeout is how long the first transmission waits for its ack;
	// each retry doubles it.
	AckTimeout sim.Duration
	// MaxAttempts bounds the number of transmissions before a send gives
	// up and returns false.
	MaxAttempts int
	// OnRetry, if set, is called before every retransmission.
	OnRetry func(to int, handler string, attempt int)
	// OnGiveUp, if set, is called when MaxAttempts transmissions all went
	// unacknowledged.
	OnGiveUp func(to int, handler string)
	// OnDuplicate, if set, is called on the receiving endpoint when a
	// duplicate delivery is suppressed.
	OnDuplicate func(from int, handler string)
}

type ackKey struct {
	node int // peer node id
	seq  uint64
}

// Endpoint is one node's attachment to the fabric.
type Endpoint struct {
	f        *netsim.Fabric
	e        *sim.Engine
	node     int
	handlers map[string]Handler
	store    *memspace.Store // host store of this node; may be nil
	started  bool
	closed   bool

	rel      *Reliability
	seqTo    map[int]uint64        // next sequence number per destination
	pending  map[ackKey]*sim.Event // in-flight reliable sends awaiting ack
	seen     map[ackKey]bool       // delivered (sender, seq) pairs, for dedup
	inFilter func(from int) bool   // nil, or inbound admission predicate

	ins Instruments
}

// Instruments mirrors endpoint activity into a metrics registry. Nil
// counters no-op; retransmissions and acks count separately from the
// first transmission of each logical message.
type Instruments struct {
	MsgsSent   *metrics.Counter
	BytesSent  *metrics.Counter
	AcksSent   *metrics.Counter
	Retries    *metrics.Counter
	Duplicates *metrics.Counter // inbound duplicate deliveries suppressed
}

// Instrument attaches registry counters to the endpoint.
func (ep *Endpoint) Instrument(ins Instruments) { ep.ins = ins }

// NewEndpoint returns an endpoint for node on fabric f. store is the node's
// host backing store (nil in cost-only mode).
func NewEndpoint(f *netsim.Fabric, node int, store *memspace.Store) *Endpoint {
	return &Endpoint{f: f, e: f.Engine(), node: node, handlers: make(map[string]Handler), store: store}
}

// EnableReliability arms the ack/timeout/retry layer. Must be called
// before Start, and on every endpoint that exchanges reliable traffic —
// both sides must speak the protocol.
func (ep *Endpoint) EnableReliability(rel Reliability) {
	if ep.started {
		panic("gasnet: EnableReliability after Start")
	}
	if rel.AckTimeout <= 0 || rel.MaxAttempts <= 0 {
		panic("gasnet: Reliability needs positive AckTimeout and MaxAttempts")
	}
	ep.rel = &rel
	ep.seqTo = make(map[int]uint64)
	ep.pending = make(map[ackKey]*sim.Event)
	ep.seen = make(map[ackKey]bool)
}

// SetInboundFilter installs a predicate consulted for every delivered AM.
// Messages from senders it rejects are still acknowledged (stopping the
// sender's retransmission) but not dispatched — the fence the runtime puts
// around nodes it has declared dead, so their stale traffic cannot corrupt
// cluster state.
func (ep *Endpoint) SetInboundFilter(f func(from int) bool) { ep.inFilter = f }

// Node returns this endpoint's node id.
func (ep *Endpoint) Node() int { return ep.node }

// Store returns this endpoint's host store.
func (ep *Endpoint) Store() *memspace.Store { return ep.store }

// Register installs handler h under name. Must be called before Start.
func (ep *Endpoint) Register(name string, h Handler) {
	if ep.started {
		panic("gasnet: Register after Start")
	}
	if _, dup := ep.handlers[name]; dup {
		panic("gasnet: duplicate handler " + name)
	}
	ep.handlers[name] = h
}

// Start launches the endpoint's dispatcher process, which pulls delivered
// messages off the fabric inbox and spawns a handler process for each.
// AMLong payload bytes land in the destination host store just before the
// handler runs.
func (ep *Endpoint) Start(e *sim.Engine) {
	if ep.started {
		panic("gasnet: double Start")
	}
	ep.started = true
	inbox := ep.f.Iface(ep.node).Inbox()
	e.Go(fmt.Sprintf("gasnet:dispatch:%d", ep.node), func(p *sim.Proc) {
		for {
			msg, ok := inbox.Get(p)
			if !ok {
				return
			}
			w, isAM := msg.Payload.(wireAM)
			if !isAM {
				panic(fmt.Sprintf("gasnet: foreign message on node %d inbox", ep.node))
			}
			if w.am.Handler == ackHandler {
				// Wire-level ack: complete the matching reliable send.
				if ack, waiting := ep.pending[ackKey{w.am.From, w.seq}]; waiting {
					ack.Trigger()
				}
				continue
			}
			if w.needAck {
				// Acknowledge before dispatching: the ack covers delivery,
				// not handler completion, and must go out even for
				// duplicates (the original ack may have been the loss).
				ep.sendAck(p, w.am.From, w.seq)
				if ep.seen == nil { // reliable sender, plain receiver
					ep.seen = make(map[ackKey]bool)
				}
				k := ackKey{w.am.From, w.seq}
				if ep.seen[k] {
					ep.ins.Duplicates.Inc()
					if ep.rel != nil && ep.rel.OnDuplicate != nil {
						ep.rel.OnDuplicate(w.am.From, w.am.Handler)
					}
					continue
				}
				ep.seen[k] = true
			}
			if ep.inFilter != nil && !ep.inFilter(w.am.From) {
				continue
			}
			h, known := ep.handlers[w.am.Handler]
			if !known {
				panic(fmt.Sprintf("gasnet: node %d has no handler %q", ep.node, w.am.Handler))
			}
			if w.am.Region.Valid() && w.srcStore != nil {
				memspace.CopyRegion(ep.store, w.srcStore, w.am.Region)
			}
			am := w.am
			e.Go(fmt.Sprintf("gasnet:h:%s@%d", am.Handler, ep.node), func(hp *sim.Proc) {
				h(hp, am)
			})
		}
	})
}

// Shutdown closes the endpoint's inbox, terminating its dispatcher once
// drained. Reliable sends still in their retry loop observe the closed
// flag and abort at their next timeout instead of exhausting the ladder.
func (ep *Endpoint) Shutdown() {
	ep.closed = true
	ep.f.Iface(ep.node).Inbox().Close()
}

// sendAck emits the wire-level acknowledgment for (peer, seq). Acks are
// control datagrams: tiny, non-occupying, best-effort — a lost ack is
// repaired by the sender's retransmission and the receiver's dedup.
func (ep *Endpoint) sendAck(p *sim.Proc, to int, seq uint64) {
	ep.ins.AcksSent.Inc()
	ep.f.Send(p, netsim.Message{
		From: ep.node, To: to, Size: ackBytes, Control: true,
		Payload: wireAM{
			am:  AM{From: ep.node, To: to, Handler: ackHandler},
			seq: seq,
		},
	})
}

// AMShort sends a control-only active message; the caller blocks for the
// sender-side cost. With reliability enabled the call blocks until the
// message is acknowledged (retrying as needed) and reports success; on a
// perfect fabric it always returns true.
func (ep *Endpoint) AMShort(p *sim.Proc, to int, handler string, args interface{}) bool {
	return ep.send(p, to, handler, args, memspace.Region{}, 0)
}

// AMMedium sends an active message carrying bytes of opaque payload.
func (ep *Endpoint) AMMedium(p *sim.Proc, to int, handler string, args interface{}, bytes uint64) bool {
	return ep.send(p, to, handler, args, memspace.Region{}, bytes)
}

// AMLong sends an active message carrying the bytes of region r from this
// node's host store into the destination's host store.
func (ep *Endpoint) AMLong(p *sim.Proc, to int, handler string, args interface{}, r memspace.Region) bool {
	return ep.send(p, to, handler, args, r, r.Size)
}

// AMLongAsync is AMLong initiated from a spawned process; the returned
// event triggers when the message has been delivered. It is fire-and-forget
// and does not participate in the reliability protocol.
func (ep *Endpoint) AMLongAsync(to int, handler string, args interface{}, r memspace.Region) *sim.Event {
	return ep.f.SendAsync(netsim.Message{
		From: ep.node, To: to, Size: headerBytes + r.Size,
		Payload: wireAM{
			am:       AM{From: ep.node, To: to, Handler: handler, Args: args, Region: r, Bytes: r.Size},
			srcStore: ep.store,
		},
	})
}

// AMProbe sends a best-effort control datagram: no ack, no retry, no TX/RX
// occupancy. The heartbeat primitive — a probe that could queue behind a
// bulk transfer or grow a retry ladder would measure the protocol instead
// of the peer.
func (ep *Endpoint) AMProbe(p *sim.Proc, to int, handler string, args interface{}) {
	ep.f.Send(p, netsim.Message{
		From: ep.node, To: to, Size: headerBytes, Control: true,
		Payload: wireAM{
			am: AM{From: ep.node, To: to, Handler: handler, Args: args},
		},
	})
}

func (ep *Endpoint) send(p *sim.Proc, to int, handler string, args interface{}, r memspace.Region, bytes uint64) bool {
	m := netsim.Message{
		From: ep.node, To: to, Size: headerBytes + bytes,
		Payload: wireAM{
			am:       AM{From: ep.node, To: to, Handler: handler, Args: args, Region: r, Bytes: bytes},
			srcStore: ep.store,
		},
	}
	if ep.rel == nil || to == ep.node {
		ep.ins.MsgsSent.Inc()
		ep.ins.BytesSent.Add(int64(m.Size))
		ep.f.Send(p, m)
		return true
	}
	ep.seqTo[to]++
	seq := ep.seqTo[to]
	w := m.Payload.(wireAM)
	w.seq, w.needAck = seq, true
	m.Payload = w
	key := ackKey{to, seq}
	ack := sim.NewEvent(ep.e)
	ep.pending[key] = ack
	defer delete(ep.pending, key)
	timeout := ep.rel.AckTimeout
	for attempt := 1; ; attempt++ {
		if ep.closed {
			return false
		}
		if attempt > 1 {
			ep.ins.Retries.Inc()
			if ep.rel.OnRetry != nil {
				ep.rel.OnRetry(to, handler, attempt)
			}
		}
		ep.ins.MsgsSent.Inc()
		ep.ins.BytesSent.Add(int64(m.Size))
		ep.f.Send(p, m)
		if ack.WaitFor(p, timeout) {
			return true
		}
		if attempt >= ep.rel.MaxAttempts || ep.closed {
			if ep.rel.OnGiveUp != nil {
				ep.rel.OnGiveUp(to, handler)
			}
			return false
		}
		timeout *= 2
	}
}
