package gasnet

import (
	"testing"
	"time"

	"github.com/bsc-repro/ompss/internal/hw"
	"github.com/bsc-repro/ompss/internal/memspace"
	"github.com/bsc-repro/ompss/internal/netsim"
	"github.com/bsc-repro/ompss/internal/sim"
)

func testNet() hw.NetSpec {
	return hw.NetSpec{Bandwidth: 1e9, Latency: 5 * time.Microsecond, PerMessageOverhead: time.Microsecond}
}

func setup(n int, validate bool) (*sim.Engine, *netsim.Fabric, []*Endpoint) {
	e := sim.NewEngine()
	f := netsim.New(e, testNet(), n)
	eps := make([]*Endpoint, n)
	for i := range eps {
		var store *memspace.Store
		if validate {
			store = memspace.NewStore(memspace.Host(i))
		}
		eps[i] = NewEndpoint(f, i, store)
	}
	return e, f, eps
}

func TestAMShortRoundTrip(t *testing.T) {
	e, _, eps := setup(2, false)
	gotArgs := make(chan interface{}, 1)
	pongDone := sim.NewEvent(e)
	eps[1].Register("ping", func(p *sim.Proc, am AM) {
		gotArgs <- am.Args
		eps[1].AMShort(p, am.From, "pong", nil)
	})
	eps[0].Register("pong", func(p *sim.Proc, am AM) {
		pongDone.Trigger()
	})
	for _, ep := range eps {
		ep.Start(e)
	}
	e.Go("main", func(p *sim.Proc) {
		eps[0].AMShort(p, 1, "ping", 42)
		pongDone.Wait(p)
		eps[0].Shutdown()
		eps[1].Shutdown()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if v := <-gotArgs; v != 42 {
		t.Fatalf("args = %v", v)
	}
}

func TestAMLongDeliversBytes(t *testing.T) {
	e, _, eps := setup(2, true)
	r := memspace.Region{Addr: 0x1000, Size: 16}
	src := eps[0].Store().Bytes(r)
	for i := range src {
		src[i] = byte(i * 3)
	}
	got := sim.NewEvent(e)
	eps[1].Register("data", func(p *sim.Proc, am AM) {
		if am.Region != r {
			t.Errorf("region = %v", am.Region)
		}
		b := eps[1].Store().Bytes(r)
		for i := range b {
			if b[i] != byte(i*3) {
				t.Errorf("byte %d = %d", i, b[i])
			}
		}
		got.Trigger()
	})
	eps[1].Start(e)
	e.Go("main", func(p *sim.Proc) {
		eps[0].AMLong(p, 1, "data", nil, r)
		got.Wait(p)
		eps[1].Shutdown()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAMLongAsyncDelivery(t *testing.T) {
	e, _, eps := setup(2, true)
	r := memspace.Region{Addr: 0x2000, Size: 1_000_000}
	eps[0].Store().Bytes(r)[0] = 99
	var handlerAt, doneAt sim.Time
	eps[1].Register("data", func(p *sim.Proc, am AM) { handlerAt = p.Now() })
	eps[1].Start(e)
	e.Go("main", func(p *sim.Proc) {
		done := eps[0].AMLongAsync(1, "data", nil, r)
		done.Wait(p)
		doneAt = p.Now()
		eps[1].Shutdown()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if eps[1].Store().Bytes(r)[0] != 99 {
		t.Fatal("bytes not delivered")
	}
	// ~1ms serialization for 1MB: delivery must reflect wire time.
	if handlerAt < sim.Time(time.Millisecond) {
		t.Fatalf("handler at %v, expected >= 1ms wire time", handlerAt)
	}
	if doneAt < handlerAt {
		t.Fatalf("done (%v) before delivery (%v)", doneAt, handlerAt)
	}
}

func TestAMMediumChargesPayload(t *testing.T) {
	e, _, eps := setup(2, false)
	var at sim.Time
	eps[1].Register("blob", func(p *sim.Proc, am AM) {
		at = p.Now()
		if am.Bytes != 2_000_000 {
			t.Errorf("bytes = %d", am.Bytes)
		}
	})
	eps[1].Start(e)
	e.Go("main", func(p *sim.Proc) {
		eps[0].AMMedium(p, 1, "blob", "hdr", 2_000_000)
		p.Sleep(time.Second)
		eps[1].Shutdown()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at < sim.Time(2*time.Millisecond) {
		t.Fatalf("2MB payload delivered at %v, want >= 2ms", at)
	}
}

func TestHandlersCanBlockWithoutStallingDispatch(t *testing.T) {
	e, _, eps := setup(2, false)
	release := sim.NewEvent(e)
	var order []string
	eps[1].Register("slow", func(p *sim.Proc, am AM) {
		release.Wait(p)
		order = append(order, "slow")
	})
	eps[1].Register("fast", func(p *sim.Proc, am AM) {
		order = append(order, "fast")
		release.Trigger()
	})
	eps[1].Start(e)
	e.Go("main", func(p *sim.Proc) {
		eps[0].AMShort(p, 1, "slow", nil)
		eps[0].AMShort(p, 1, "fast", nil)
		p.Sleep(time.Second)
		eps[1].Shutdown()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// The blocked "slow" handler must not prevent "fast" from running.
	if len(order) != 2 || order[0] != "fast" || order[1] != "slow" {
		t.Fatalf("order = %v", order)
	}
}

func TestRegisterAfterStartPanics(t *testing.T) {
	e, _, eps := setup(1, false)
	eps[0].Start(e)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	eps[0].Register("late", func(*sim.Proc, AM) {})
}

func TestDuplicateRegisterPanics(t *testing.T) {
	_, _, eps := setup(1, false)
	eps[0].Register("h", func(*sim.Proc, AM) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	eps[0].Register("h", func(*sim.Proc, AM) {})
}

func TestDataBeforeControlOrdering(t *testing.T) {
	// The cluster protocol depends on this: an AMLong (data) sent before an
	// AMShort (runTask) to the same destination is handled first, so a
	// task never starts before its staged input landed.
	e, _, eps := setup(2, true)
	r := memspace.Region{Addr: 0x9000, Size: 500_000}
	eps[0].Store().Bytes(r)[0] = 77
	var order []string
	eps[1].Register("data", func(p *sim.Proc, am AM) {
		order = append(order, "data")
		if eps[1].Store().Bytes(r)[0] != 77 {
			t.Error("payload bytes not present at data handler time")
		}
	})
	eps[1].Register("run", func(p *sim.Proc, am AM) {
		order = append(order, "run")
	})
	eps[1].Start(e)
	e.Go("main", func(p *sim.Proc) {
		eps[0].AMLong(p, 1, "data", nil, r)
		eps[0].AMShort(p, 1, "run", nil)
		p.Sleep(time.Second)
		eps[1].Shutdown()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "data" || order[1] != "run" {
		t.Fatalf("order = %v, want data before run", order)
	}
}
