package gasnet

import (
	"testing"
	"time"

	"github.com/bsc-repro/ompss/internal/netsim"
	"github.com/bsc-repro/ompss/internal/sim"
)

// dropHook drops every message matching the predicate; everything else
// passes untouched.
type dropHook struct {
	dropIf func(m netsim.Message) bool
}

func (h *dropHook) FilterSend(now sim.Time, m netsim.Message) netsim.Verdict {
	return netsim.Verdict{Drop: h.dropIf != nil && h.dropIf(m)}
}

func (h *dropHook) FilterDeliver(sim.Time, netsim.Message) bool { return true }

// handlerOf extracts the AM handler name of a fabric message.
func handlerOf(m netsim.Message) string { return m.Payload.(wireAM).am.Handler }

func TestReliableSendRetriesThroughDrops(t *testing.T) {
	e, f, eps := setup(2, false)
	dropped := 0
	f.SetHook(&dropHook{dropIf: func(m netsim.Message) bool {
		if handlerOf(m) == "work" && dropped < 2 {
			dropped++
			return true
		}
		return false
	}})
	var retries []int
	rel := Reliability{AckTimeout: 50 * time.Microsecond, MaxAttempts: 8,
		OnRetry: func(to int, handler string, attempt int) { retries = append(retries, attempt) }}
	runs := 0
	eps[1].Register("work", func(p *sim.Proc, am AM) { runs++ })
	for _, ep := range eps {
		ep.EnableReliability(rel)
		ep.Start(e)
	}
	var ok bool
	e.Go("main", func(p *sim.Proc) {
		ok = eps[0].AMShort(p, 1, "work", nil)
		p.Sleep(time.Millisecond)
		eps[0].Shutdown()
		eps[1].Shutdown()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("reliable send failed despite retries available")
	}
	if runs != 1 {
		t.Fatalf("handler ran %d times, want 1", runs)
	}
	if len(retries) != 2 || retries[0] != 2 || retries[1] != 3 {
		t.Fatalf("retries = %v, want attempts 2 and 3", retries)
	}
}

func TestLostAckCausesDedupedDuplicate(t *testing.T) {
	// Drop the first ack: the original delivery succeeds, the sender times
	// out and retransmits, and the receiver must suppress the duplicate
	// (acking it again) so the handler still runs exactly once.
	e, f, eps := setup(2, false)
	droppedAcks := 0
	f.SetHook(&dropHook{dropIf: func(m netsim.Message) bool {
		if handlerOf(m) == ackHandler && droppedAcks < 1 {
			droppedAcks++
			return true
		}
		return false
	}})
	runs, dups := 0, 0
	eps[1].Register("work", func(p *sim.Proc, am AM) { runs++ })
	rel := Reliability{AckTimeout: 50 * time.Microsecond, MaxAttempts: 8,
		OnDuplicate: func(from int, handler string) { dups++ }}
	for _, ep := range eps {
		ep.EnableReliability(rel)
		ep.Start(e)
	}
	var ok bool
	e.Go("main", func(p *sim.Proc) {
		ok = eps[0].AMShort(p, 1, "work", nil)
		p.Sleep(time.Millisecond)
		eps[0].Shutdown()
		eps[1].Shutdown()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("send not acknowledged after retransmission")
	}
	if runs != 1 {
		t.Fatalf("handler ran %d times, want exactly 1 (dedup failed)", runs)
	}
	if dups != 1 {
		t.Fatalf("OnDuplicate fired %d times, want 1", dups)
	}
}

func TestMaxAttemptsExhaustionBacksOffExponentially(t *testing.T) {
	e, f, eps := setup(2, false)
	sends := 0
	f.SetHook(&dropHook{dropIf: func(m netsim.Message) bool {
		if handlerOf(m) == "work" {
			sends++
			return true
		}
		return false
	}})
	gaveUp := 0
	rel := Reliability{AckTimeout: 50 * time.Microsecond, MaxAttempts: 3,
		OnGiveUp: func(to int, handler string) { gaveUp++ }}
	eps[1].Register("work", func(p *sim.Proc, am AM) {})
	for _, ep := range eps {
		ep.EnableReliability(rel)
		ep.Start(e)
	}
	var ok bool
	var elapsed sim.Time
	e.Go("main", func(p *sim.Proc) {
		start := p.Now()
		ok = eps[0].AMShort(p, 1, "work", nil)
		elapsed = p.Now() - start
		eps[0].Shutdown()
		eps[1].Shutdown()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("send succeeded with every transmission dropped")
	}
	if gaveUp != 1 {
		t.Fatalf("OnGiveUp fired %d times", gaveUp)
	}
	if sends != 3 {
		t.Fatalf("transmissions = %d, want MaxAttempts = 3", sends)
	}
	// The ladder waits 50 + 100 + 200 us across the three attempts.
	if min := sim.Time(350 * time.Microsecond); elapsed < min {
		t.Fatalf("gave up after %v, want >= %v (exponential backoff)", elapsed, min)
	}
	if max := sim.Time(500 * time.Microsecond); elapsed > max {
		t.Fatalf("gave up after %v, want < %v", elapsed, max)
	}
}

func TestShutdownAbortsRetryLadder(t *testing.T) {
	e, f, eps := setup(2, false)
	sends := 0
	f.SetHook(&dropHook{dropIf: func(m netsim.Message) bool {
		if handlerOf(m) == "work" {
			sends++
			return true
		}
		return false
	}})
	rel := Reliability{AckTimeout: 100 * time.Microsecond, MaxAttempts: 50}
	eps[1].Register("work", func(p *sim.Proc, am AM) {})
	for _, ep := range eps {
		ep.EnableReliability(rel)
		ep.Start(e)
	}
	var ok bool
	var finishedAt sim.Time
	e.Go("main", func(p *sim.Proc) {
		ok = eps[0].AMShort(p, 1, "work", nil)
		finishedAt = p.Now()
		eps[1].Shutdown()
	})
	e.Go("killer", func(p *sim.Proc) {
		p.Sleep(150 * time.Microsecond)
		eps[0].Shutdown()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("send reported success after shutdown")
	}
	// Aborted at the first timeout after the close (~300us), nowhere near
	// the 50-attempt ladder.
	if max := sim.Time(time.Millisecond); finishedAt > max {
		t.Fatalf("retry ladder survived shutdown until %v", finishedAt)
	}
	if sends > 3 {
		t.Fatalf("%d transmissions after shutdown, want the ladder cut short", sends)
	}
}

func TestProbeIsBestEffort(t *testing.T) {
	// AMProbe must not ack, retry, or dedup — a dropped probe simply
	// vanishes, and a delivered one runs its handler without growing state.
	e, f, eps := setup(2, false)
	drop := true
	f.SetHook(&dropHook{dropIf: func(m netsim.Message) bool {
		return handlerOf(m) == "ping" && drop
	}})
	runs := 0
	eps[1].Register("ping", func(p *sim.Proc, am AM) { runs++ })
	rel := Reliability{AckTimeout: 50 * time.Microsecond, MaxAttempts: 4}
	for _, ep := range eps {
		ep.EnableReliability(rel)
		ep.Start(e)
	}
	e.Go("main", func(p *sim.Proc) {
		eps[0].AMProbe(p, 1, "ping", nil) // dropped, no retry
		p.Sleep(time.Millisecond)
		drop = false
		eps[0].AMProbe(p, 1, "ping", nil) // delivered
		p.Sleep(time.Millisecond)
		eps[0].Shutdown()
		eps[1].Shutdown()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("handler ran %d times, want 1 (no retry of the dropped probe)", runs)
	}
}

func TestInboundFilterAcksButDoesNotDispatch(t *testing.T) {
	// The dead-node fence: filtered senders still get their ack (stopping
	// the retry ladder) but their messages never reach a handler.
	e, _, eps := setup(2, false)
	runs := 0
	eps[1].Register("work", func(p *sim.Proc, am AM) { runs++ })
	rel := Reliability{AckTimeout: 50 * time.Microsecond, MaxAttempts: 3}
	for _, ep := range eps {
		ep.EnableReliability(rel)
	}
	eps[1].SetInboundFilter(func(from int) bool { return from != 0 })
	for _, ep := range eps {
		ep.Start(e)
	}
	var ok bool
	e.Go("main", func(p *sim.Proc) {
		ok = eps[0].AMShort(p, 1, "work", nil)
		p.Sleep(time.Millisecond)
		eps[0].Shutdown()
		eps[1].Shutdown()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("filtered sender should still be acknowledged")
	}
	if runs != 0 {
		t.Fatalf("handler ran %d times behind the inbound filter", runs)
	}
}
