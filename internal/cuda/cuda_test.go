package cuda

import (
	"errors"
	"testing"
	"time"

	"github.com/bsc-repro/ompss/internal/gpusim"
	"github.com/bsc-repro/ompss/internal/hw"
	"github.com/bsc-repro/ompss/internal/memspace"
	"github.com/bsc-repro/ompss/internal/sim"
)

func newCtx(t *testing.T, overlap bool) (*sim.Engine, *Context) {
	t.Helper()
	e := sim.NewEngine()
	spec := hw.GTX480()
	spec.MemBytes = 1 << 20
	dev := gpusim.New(e, spec, memspace.GPU(0, 0), overlap, true)
	return e, NewContext(e, dev)
}

func TestMallocFreeAccounting(t *testing.T) {
	_, ctx := newCtx(t, true)
	r1 := memspace.Region{Addr: 0x1000, Size: 1 << 19}
	r2 := memspace.Region{Addr: 0x2000, Size: 1 << 19}
	r3 := memspace.Region{Addr: 0x3000, Size: 1}
	if err := ctx.Malloc(r1); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Malloc(r1); err == nil {
		t.Fatal("double malloc should fail")
	}
	if err := ctx.Malloc(r2); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Malloc(r3); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	ctx.Free(r1)
	if err := ctx.Malloc(r3); err != nil {
		t.Fatalf("after free: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("freeing unallocated region should panic")
		}
	}()
	ctx.Free(memspace.Region{Addr: 0x9999, Size: 8})
}

func TestStreamOrdering(t *testing.T) {
	e, ctx := newCtx(t, true)
	var order []string
	var end sim.Time
	e.Go("main", func(p *sim.Proc) {
		s := ctx.NewStream()
		s.LaunchAsync("k1", 2*time.Millisecond, func(*memspace.Store) { order = append(order, "k1") })
		s.LaunchAsync("k2", time.Millisecond, func(*memspace.Store) { order = append(order, "k2") })
		s.Synchronize(p)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "k1" || order[1] != "k2" {
		t.Fatalf("order = %v", order)
	}
	// Same stream serializes: 2ms + 1ms (cost is passed in full, the
	// facade does not add launch overhead on top).
	want := sim.Time(3 * time.Millisecond)
	if end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
}

func TestTwoStreamsOverlapCopyAndKernel(t *testing.T) {
	e, ctx := newCtx(t, true)
	host := memspace.NewStore(memspace.Host(0))
	r := memspace.Region{Addr: 0x4000, Size: 1 << 19}
	var end sim.Time
	e.Go("main", func(p *sim.Proc) {
		s1 := ctx.NewStream()
		s2 := ctx.NewStream()
		s1.LaunchAsync("big", 5*time.Millisecond, nil)
		s2.MemcpyAsync(gpusim.H2D, r, host, true)
		s1.Synchronize(p)
		s2.Synchronize(p)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// The ~100us copy hides entirely under the 5ms kernel.
	want := sim.Time(5 * time.Millisecond)
	if end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
}

func TestBlockingMemcpyMovesBytes(t *testing.T) {
	e, ctx := newCtx(t, true)
	host := memspace.NewStore(memspace.Host(0))
	r := memspace.Region{Addr: 0x5000, Size: 3}
	copy(host.Bytes(r), []byte{1, 2, 3})
	e.Go("main", func(p *sim.Proc) {
		ctx.Memcpy(p, gpusim.H2D, r, host, false)
		ctx.Launch(p, "incr", time.Microsecond, func(dev *memspace.Store) {
			b := dev.Bytes(r)
			for i := range b {
				b[i]++
			}
		})
		ctx.Memcpy(p, gpusim.D2H, r, host, false)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	b := host.Bytes(r)
	if b[0] != 2 || b[1] != 3 || b[2] != 4 {
		t.Fatalf("host bytes = %v", b)
	}
}

func TestFreeDropsDeviceBytes(t *testing.T) {
	e, ctx := newCtx(t, true)
	host := memspace.NewStore(memspace.Host(0))
	r := memspace.Region{Addr: 0x6000, Size: 8}
	if err := ctx.Malloc(r); err != nil {
		t.Fatal(err)
	}
	e.Go("main", func(p *sim.Proc) {
		ctx.Memcpy(p, gpusim.H2D, r, host, true)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ctx.Device().Store().Has(r) {
		t.Fatal("device store should hold region after copy")
	}
	ctx.Free(r)
	if ctx.Device().Store().Has(r) {
		t.Fatal("Free should drop device bytes")
	}
	if ctx.Device().MemUsed() != 0 {
		t.Fatalf("MemUsed = %d after free", ctx.Device().MemUsed())
	}
}

func TestEventsSynchronizeStreams(t *testing.T) {
	e, ctx := newCtx(t, true)
	var order []string
	var end sim.Time
	e.Go("main", func(p *sim.Proc) {
		producer := ctx.NewStream()
		consumer := ctx.NewStream()
		producer.LaunchAsync("produce", 3*time.Millisecond, func(*memspace.Store) {
			order = append(order, "produce")
		})
		ev := ctx.NewEvent()
		ev.Record(producer)
		consumer.WaitEvent(ev)
		consumer.LaunchAsync("consume", time.Millisecond, func(*memspace.Store) {
			order = append(order, "consume")
		})
		consumer.Synchronize(p)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "produce" || order[1] != "consume" {
		t.Fatalf("order = %v", order)
	}
	if want := sim.Time(4 * time.Millisecond); end != want {
		t.Fatalf("end = %v, want %v (serialized through the event)", end, want)
	}
}

func TestUnrecordedEventCompletesImmediately(t *testing.T) {
	e, ctx := newCtx(t, true)
	e.Go("main", func(p *sim.Proc) {
		ev := ctx.NewEvent()
		ev.Synchronize(p) // must not block
		if p.Now() != 0 {
			t.Errorf("unrecorded event waited until %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
