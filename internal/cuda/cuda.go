// Package cuda is a thin CUDA-like API facade over the simulated GPU of
// package gpusim: contexts, device memory allocation, synchronous and
// stream-ordered asynchronous copies, and kernel launches. Both the Nanos++
// GPU dependent layer and the MPI+CUDA baseline applications program
// against this facade, mirroring how the paper's runtime and baselines both
// sit on the CUDA library.
package cuda

import (
	"errors"
	"fmt"
	"time"

	"github.com/bsc-repro/ompss/internal/gpusim"
	"github.com/bsc-repro/ompss/internal/memspace"
	"github.com/bsc-repro/ompss/internal/sim"
)

// ErrOutOfMemory is returned by Malloc when device memory is exhausted.
var ErrOutOfMemory = errors.New("cuda: out of device memory")

// Context wraps one device, tracking its allocations.
type Context struct {
	e      *sim.Engine
	dev    *gpusim.Device
	allocs map[uint64]uint64 // region addr -> size
}

// NewContext returns a context on dev.
func NewContext(e *sim.Engine, dev *gpusim.Device) *Context {
	return &Context{e: e, dev: dev, allocs: make(map[uint64]uint64)}
}

// Device returns the underlying simulated device.
func (c *Context) Device() *gpusim.Device { return c.dev }

// Malloc reserves device memory for region r (cudaMalloc).
func (c *Context) Malloc(r memspace.Region) error {
	if _, dup := c.allocs[r.Addr]; dup {
		return fmt.Errorf("cuda: double Malloc of %v", r)
	}
	if !c.dev.Alloc(r.Size) {
		return ErrOutOfMemory
	}
	c.allocs[r.Addr] = r.Size
	return nil
}

// Free releases the device allocation for region r (cudaFree).
func (c *Context) Free(r memspace.Region) {
	size, ok := c.allocs[r.Addr]
	if !ok {
		panic(fmt.Sprintf("cuda: Free of unallocated region %v", r))
	}
	delete(c.allocs, r.Addr)
	c.dev.Free(size)
	if s := c.dev.Store(); s != nil {
		s.Drop(memspace.Region{Addr: r.Addr, Size: size})
	}
}

// Memcpy performs a blocking transfer (cudaMemcpy): the calling process
// waits for completion. pinned marks the host buffer page-locked.
func (c *Context) Memcpy(p *sim.Proc, dir gpusim.Dir, r memspace.Region, host *memspace.Store, pinned bool) {
	c.dev.Copy(p, dir, r, host, pinned)
}

// Launch runs a kernel synchronously (launch + cudaDeviceSynchronize).
func (c *Context) Launch(p *sim.Proc, name string, cost time.Duration, body func(dev *memspace.Store)) {
	c.dev.Launch(p, name, cost, body)
}

// Stream is a CUDA stream: operations enqueued on it execute in order,
// overlapping with other streams when the device supports it.
type Stream struct {
	ctx  *Context
	last *sim.Event // completion of the most recently enqueued op
}

// NewStream returns an empty stream (cudaStreamCreate).
func (c *Context) NewStream() *Stream {
	ev := sim.NewEvent(c.e)
	ev.Trigger() // empty stream is synchronized
	return &Stream{ctx: c, last: ev}
}

// enqueue chains op behind the stream's previous operation. start must kick
// off the underlying asynchronous operation and return its completion event.
func (s *Stream) enqueue(name string, start func() *sim.Event) *sim.Event {
	prev := s.last
	done := sim.NewEvent(s.ctx.e)
	s.ctx.e.Go("stream:"+name, func(p *sim.Proc) {
		prev.Wait(p)
		start().Wait(p)
		done.Trigger()
	})
	s.last = done
	return done
}

// MemcpyAsync enqueues a transfer on the stream (cudaMemcpyAsync).
func (s *Stream) MemcpyAsync(dir gpusim.Dir, r memspace.Region, host *memspace.Store, pinned bool) *sim.Event {
	return s.enqueue(fmt.Sprintf("memcpy:%v", dir), func() *sim.Event {
		return s.ctx.dev.CopyAsync(dir, r, host, pinned)
	})
}

// LaunchAsync enqueues a kernel on the stream.
func (s *Stream) LaunchAsync(name string, cost time.Duration, body func(dev *memspace.Store)) *sim.Event {
	return s.enqueue("kernel:"+name, func() *sim.Event {
		return s.ctx.dev.LaunchAsync(name, cost, body)
	})
}

// Synchronize blocks the calling process until all enqueued work completes
// (cudaStreamSynchronize).
func (s *Stream) Synchronize(p *sim.Proc) {
	s.last.Wait(p)
}

// Event is a CUDA event: a marker recorded into a stream that other
// streams can wait on (cudaEventRecord / cudaStreamWaitEvent).
type Event struct {
	ctx  *Context
	done *sim.Event
}

// NewEvent returns an unrecorded event (cudaEventCreate). Waiting on an
// unrecorded event completes immediately, as in CUDA.
func (c *Context) NewEvent() *Event {
	ev := sim.NewEvent(c.e)
	ev.Trigger()
	return &Event{ctx: c, done: ev}
}

// Record marks the event complete when all work currently enqueued on s
// has executed (cudaEventRecord).
func (ev *Event) Record(s *Stream) {
	ev.done = s.last
}

// Synchronize blocks the calling process until the event completes
// (cudaEventSynchronize).
func (ev *Event) Synchronize(p *sim.Proc) { ev.done.Wait(p) }

// WaitEvent makes all subsequently enqueued work on s wait for ev
// (cudaStreamWaitEvent).
func (s *Stream) WaitEvent(ev *Event) {
	prev := s.last
	gate := sim.NewEvent(s.ctx.e)
	s.ctx.e.Go("stream:waitEvent", func(p *sim.Proc) {
		prev.Wait(p)
		ev.done.Wait(p)
		gate.Trigger()
	})
	s.last = gate
}
