package ompss

import (
	"testing"
	"time"

	"github.com/bsc-repro/ompss/internal/hw"
	"github.com/bsc-repro/ompss/internal/memspace"
	"github.com/bsc-repro/ompss/internal/task"
)

// touchN is a kernel reading/writing nothing, used to observe pure copy
// clause behavior.
type touchN struct{ d time.Duration }

func (w touchN) Name() string                      { return "touch" }
func (w touchN) GPUCost(hw.GPUSpec) time.Duration  { return w.d }
func (w touchN) CPUCost(hw.NodeSpec) time.Duration { return w.d }
func (w touchN) Run(*memspace.Store)               {}

func TestCopyInWithoutDependence(t *testing.T) {
	// CopyIn moves data to the device without creating a dependence: two
	// tasks copy-in the same region and still run concurrently.
	cfg := Config{Cluster: MultiGPUSystem(2)}
	rt := New(cfg)
	stats, err := rt.Run(func(ctx *Context) {
		shared := ctx.Alloc(1 << 20)
		ctx.InitSeq(shared, nil)
		for i := 0; i < 2; i++ {
			ctx.Task(touchN{d: 10 * time.Millisecond},
				Target(CUDA), NoCopyDeps(), CopyIn(shared))
		}
		ctx.TaskWaitNoflush()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two 10ms tasks on two GPUs: ~10ms, not 20ms.
	if stats.ElapsedSeconds > 0.015 {
		t.Fatalf("copy-in tasks serialized: %.3fs", stats.ElapsedSeconds)
	}
	// And the data did move to both devices.
	if stats.BytesH2D != 2<<20 {
		t.Fatalf("H2D = %d, want both devices staged", stats.BytesH2D)
	}
}

func TestCopyOutAndCopyInOutClauses(t *testing.T) {
	cfg := Config{Cluster: MultiGPUSystem(1), Validate: true}
	rt := New(cfg)
	stats, err := rt.Run(func(ctx *Context) {
		a := ctx.Alloc(4096)
		b := ctx.Alloc(4096)
		ctx.InitSeq(a, nil)
		ctx.InitSeq(b, nil)
		ctx.Task(touchN{d: time.Millisecond}, Target(CUDA), NoCopyDeps(), CopyOut(a), CopyInOut(b))
		ctx.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	// copy_inout staged b in; copy_out allocated a without transfer; the
	// final flush brought both back.
	if stats.BytesH2D != 4096 {
		t.Fatalf("H2D = %d, want only the inout region staged", stats.BytesH2D)
	}
	if stats.BytesD2H != 8192 {
		t.Fatalf("D2H = %d, want both regions flushed", stats.BytesD2H)
	}
}

func TestTaskWaitOnPublicAPI(t *testing.T) {
	cfg := Config{Cluster: MultiGPUSystem(2), Validate: true}
	rt := New(cfg)
	_, err := rt.Run(func(ctx *Context) {
		fast := ctx.Alloc(64)
		slow := ctx.Alloc(64)
		ctx.InitSeq(fast, nil)
		ctx.InitSeq(slow, nil)
		ctx.Task(fillVal{r: fast, v: 5}, Target(CUDA), Out(fast))
		ctx.Task(touchN{d: 100 * time.Millisecond}, Target(CUDA), InOut(slow))
		before := ctx.Now()
		ctx.TaskWaitOn(fast)
		if got := unsafeF32(ctx.HostBytes(fast))[0]; got != 5 {
			t.Errorf("fast = %v after TaskWaitOn", got)
		}
		if waited := (ctx.Now() - before).Seconds(); waited > 0.05 {
			t.Errorf("TaskWaitOn blocked %.3fs on unrelated slow task", waited)
		}
		ctx.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsUtilization(t *testing.T) {
	s := Stats{ElapsedSeconds: 2, KernelBusySeconds: 3}
	if got := s.Utilization(2); got != 0.75 {
		t.Fatalf("utilization = %v", got)
	}
	if got := (Stats{}).Utilization(4); got != 0 {
		t.Fatalf("zero-elapsed utilization = %v", got)
	}
	if got := s.Utilization(0); got != 0 {
		t.Fatalf("zero-gpu utilization = %v", got)
	}
}

func TestNameClauseOverridesWorkName(t *testing.T) {
	cfg := Config{Cluster: MultiGPUSystem(1)}
	rec := NewTrace()
	cfg.Trace = rec
	rt := New(cfg)
	_, err := rt.Run(func(ctx *Context) {
		r := ctx.Alloc(64)
		ctx.Task(touchN{d: time.Millisecond}, Target(CUDA), Name("renamed"), Out(r))
		ctx.TaskWaitNoflush()
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range rec.Spans() {
		if s.Name == "renamed" {
			found = true
		}
	}
	if !found {
		t.Fatal("renamed task not in trace")
	}
}

func TestNilWorkBecomesNoop(t *testing.T) {
	cfg := Config{Cluster: MultiGPUSystem(1), Validate: true}
	rt := New(cfg)
	stats, err := rt.Run(func(ctx *Context) {
		r := ctx.Alloc(64)
		ctx.Task(nil, Name("sync-only"), Out(r), NoCopyDeps())
		ctx.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TasksSMP != 1 {
		t.Fatalf("tasks = %+v", stats)
	}
}

func TestRuntimeCannotBeReused(t *testing.T) {
	rt := New(Config{Cluster: MultiGPUSystem(1)})
	if _, err := rt.Run(func(ctx *Context) {}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on reuse")
		}
	}()
	_, _ = rt.Run(func(ctx *Context) {})
}

func TestDeviceAndAccessStrings(t *testing.T) {
	if CUDA.String() != "cuda" || SMP.String() != "smp" {
		t.Fatal("device strings")
	}
	if task.Red.String() != "reduction" || task.In.String() != "in" {
		t.Fatal("access strings")
	}
	if task.Device(9).String() == "" || task.Access(9).String() == "" {
		t.Fatal("unknown values must still print")
	}
}

func TestCostOnlyModeHasNoBytes(t *testing.T) {
	cfg := Config{Cluster: MultiGPUSystem(1)} // Validate off
	rt := New(cfg)
	_, err := rt.Run(func(ctx *Context) {
		r := ctx.Alloc(64)
		ctx.InitSeq(r, func(b []byte) {
			t.Error("fill must not run in cost-only mode")
		})
		ctx.Task(fillVal{r: r, v: 1}, Target(CUDA), InOut(r))
		ctx.TaskWait()
		if ctx.HostBytes(r) != nil {
			t.Error("HostBytes should be nil in cost-only mode")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
