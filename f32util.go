package ompss

import "unsafe"

// unsafeF32 reinterprets backing bytes as float32s.
func unsafeF32(b []byte) []float32 {
	if len(b) < 4 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// unsafeF64 reinterprets backing bytes as float64s.
func unsafeF64(b []byte) []float64 {
	if len(b) < 8 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}
