// Matmul runs the paper's tiled matrix multiplication (Figure 1) on a
// configurable simulated machine — the same program scales from one GPU to
// a multi-GPU node to a GPU cluster, selected entirely by flags:
//
//	go run ./examples/matmul -gpus 4                      # multi-GPU node
//	go run ./examples/matmul -nodes 8 -init smp -presend 2 # GPU cluster
//	go run ./examples/matmul -nodes 2 -verify             # check the numbers
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"github.com/bsc-repro/ompss"
	"github.com/bsc-repro/ompss/internal/apps"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 1, "cluster nodes (1 = single machine)")
		gpus      = flag.Int("gpus", 1, "GPUs per node (multi-GPU system when nodes=1)")
		n         = flag.Int("n", 4096, "matrix dimension")
		bs        = flag.Int("bs", 512, "tile dimension")
		schedP    = flag.String("sched", "dependencies", "scheduler: bf, dependencies, affinity")
		cache     = flag.String("cache", "wb", "cache policy: nocache, wt, wb")
		initM     = flag.String("init", "seq", "initialization: seq, smp, gpu")
		presend   = flag.Int("presend", 2, "tasks present to remote nodes")
		stos      = flag.Bool("stos", true, "allow slave-to-slave transfers")
		verify    = flag.Bool("verify", false, "carry real data and check the result")
		showTrace = flag.Bool("trace", false, "print an execution Gantt chart and span summary")
	)
	flag.Parse()

	var rec *ompss.Trace
	cfg := ompss.Config{
		Scheduler:        ompss.Policy(*schedP),
		CachePolicy:      ompss.CachePolicy(*cache),
		NonBlockingCache: true,
		Steal:            true,
		SlaveToSlave:     *stos,
		Presend:          *presend,
		Validate:         *verify,
	}
	if *nodes > 1 {
		cfg.Cluster = ompss.GPUCluster(*nodes)
	} else {
		cfg.Cluster = ompss.MultiGPUSystem(*gpus)
	}
	if *showTrace {
		rec = ompss.NewTrace()
		cfg.Trace = rec
	}

	p := apps.MatmulParams{N: *n, BS: *bs, Init: apps.InitMode(*initM)}
	res, err := apps.MatmulOmpSs(cfg, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matmul %dx%d (tiles %d): %s\n", *n, *n, *bs, res)
	if *verify {
		want := fmt.Sprintf("checksum=%.3f", serialChecksum(p))
		status := "OK"
		if res.Check != want {
			status = fmt.Sprintf("MISMATCH (serial %s)", want)
		}
		fmt.Printf("verify: %s %s\n", res.Check, status)
	}
	s := res.Stats
	fmt.Printf("tasks: %d cuda / %d smp (%d remote), network: %d MB (StoS %d MB), GPU traffic: %d MB in / %d MB out\n",
		s.TasksCUDA, s.TasksSMP, s.TasksRemote, s.NetBytes>>20, s.BytesStoS>>20, s.BytesH2D>>20, s.BytesD2H>>20)
	if rec != nil {
		fmt.Println()
		if err := rec.Gantt(os.Stdout, 100); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		sum := rec.Summary()
		kinds := make([]string, 0, len(sum))
		for k := range sum {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, kind := range kinds {
			e := sum[kind]
			fmt.Printf("%-6s %6d spans  %8d MB  %v\n", kind, e.Count, e.Bytes>>20, e.Time)
		}
	}
}

func serialChecksum(p apps.MatmulParams) float64 {
	var sum float64
	for _, tile := range apps.MatmulSerialOut(p.N, p.BS) {
		for _, v := range tile {
			sum += float64(v)
		}
	}
	return sum
}
