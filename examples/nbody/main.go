// Nbody runs the paper's N-Body simulation as OmpSs tasks: one force task
// per block of bodies per iteration, each reading every block of positions
// produced by the previous iteration (the all-to-all redistribution the
// paper describes, handled entirely by the coherence layer):
//
//	go run ./examples/nbody -gpus 4
//	go run ./examples/nbody -nodes 8 -n 20000 -iters 10
//	go run ./examples/nbody -verify
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/bsc-repro/ompss"
	"github.com/bsc-repro/ompss/internal/apps"
)

func main() {
	var (
		nodes  = flag.Int("nodes", 1, "cluster nodes (1 = single machine)")
		gpus   = flag.Int("gpus", 1, "GPUs per node (multi-GPU system when nodes=1)")
		n      = flag.Int("n", 20000, "bodies")
		blocks = flag.Int("blocks", 0, "body blocks (0 = 4 per GPU)")
		iters  = flag.Int("iters", 10, "simulation iterations")
		cache  = flag.String("cache", "wb", "cache policy: nocache, wt, wb")
		verify = flag.Bool("verify", false, "carry real data and check the result")
	)
	flag.Parse()

	cfg := ompss.Config{
		CachePolicy:      ompss.CachePolicy(*cache),
		NonBlockingCache: true,
		Steal:            true,
		SlaveToSlave:     true,
		Presend:          2,
		Validate:         *verify,
	}
	if *nodes > 1 {
		cfg.Cluster = ompss.GPUCluster(*nodes)
	} else {
		cfg.Cluster = ompss.MultiGPUSystem(*gpus)
	}
	if *blocks == 0 {
		*blocks = 4 * cfg.Cluster.TotalGPUs()
	}
	for *n%*blocks != 0 {
		*n++
	}

	p := apps.NBodyParams{N: *n, Blocks: *blocks, Iters: *iters}
	res, err := apps.NBodyOmpSs(cfg, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nbody n=%d blocks=%d iters=%d: %s\n", *n, *blocks, *iters, res)
	if *verify {
		want := fmt.Sprintf("pos-sum=%.3f", apps.NBodySerialSum(p))
		status := "OK"
		if res.Check != want {
			status = fmt.Sprintf("MISMATCH (serial %s)", want)
		}
		fmt.Printf("verify: %s %s\n", res.Check, status)
	}
}
