// Quickstart: a complete OmpSs program against the public API.
//
// A vector is initialized on the host, two dependent CUDA tasks transform
// it on a (simulated) GPU, and taskwait brings the result home — the
// runtime moves all data automatically, like the paper's Figure 1 program.
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"
	"unsafe"

	"github.com/bsc-repro/ompss"
	"github.com/bsc-repro/ompss/internal/hw"
	"github.com/bsc-repro/ompss/internal/memspace"
)

// f32 reinterprets a backing byte buffer as float32s, the way kernels
// access their regions.
func f32(b []byte) []float32 {
	if len(b) < 4 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// saxpy is a user-provided kernel: y += a*x, with a roofline cost model
// (what the simulated GPU charges) and a real body (what validation runs).
type saxpy struct {
	x, y ompss.Region
	a    float32
}

func (k saxpy) Name() string { return "saxpy" }

func (k saxpy) GPUCost(spec hw.GPUSpec) time.Duration {
	n := float64(k.x.Size) / 4
	return time.Duration((2 * n / spec.EffectiveFlops()) * 1e9)
}

func (k saxpy) CPUCost(spec hw.NodeSpec) time.Duration {
	n := float64(k.x.Size) / 4
	return time.Duration((2 * n / spec.CPUFlops) * 1e9)
}

func (k saxpy) Run(store *memspace.Store) {
	if store == nil {
		return // cost-only run
	}
	x, y := f32(store.Bytes(k.x)), f32(store.Bytes(k.y))
	for i := range y {
		y[i] += k.a * x[i]
	}
}

func fillFloats(b []byte, v float32) {
	f := f32(b)
	for i := range f {
		f[i] = v
	}
}

func main() {
	const n = 1 << 20 // 1M floats

	cfg := ompss.Config{
		Cluster:  ompss.MultiGPUSystem(1), // one Tesla S2050-class GPU
		Validate: true,                    // carry real bytes so the result can be checked
	}
	rt := ompss.New(cfg)

	stats, err := rt.Run(func(ctx *ompss.Context) {
		x := ctx.Alloc(n * 4)
		y := ctx.Alloc(n * 4)
		ctx.InitSeq(x, func(b []byte) { fillFloats(b, 1) })
		ctx.InitSeq(y, func(b []byte) { fillFloats(b, 2) })

		// #pragma omp target device(cuda) copy_deps
		// #pragma omp task input(x) inout(y)
		ctx.Task(saxpy{x: x, y: y, a: 3}, ompss.Target(ompss.CUDA), ompss.In(x), ompss.InOut(y))
		ctx.Task(saxpy{x: x, y: y, a: 2}, ompss.Target(ompss.CUDA), ompss.In(x), ompss.InOut(y))
		ctx.TaskWait()

		fmt.Printf("y[0] = %v (want 7: 2 + 3*1 + 2*1)\n", f32(ctx.HostBytes(y))[0])
		fmt.Printf("virtual time: %v\n", ctx.Now())
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CUDA tasks: %d, H2D: %d bytes, D2H: %d bytes, cache hits: %d\n",
		stats.TasksCUDA, stats.BytesH2D, stats.BytesD2H, stats.CacheHits)
}
