// Heat runs a 1-D Jacobi stencil as OmpSs tasks whose halo reads
// partially overlap the neighbouring blocks — the fragmented-region
// workload — on a configurable simulated machine:
//
//	go run ./examples/heat -nodes 2 -verify
//	go run ./examples/heat -gpus 4 -steps 32
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/bsc-repro/ompss"
	"github.com/bsc-repro/ompss/internal/apps"
)

func main() {
	var (
		nodes  = flag.Int("nodes", 2, "cluster nodes (1 = single machine)")
		gpus   = flag.Int("gpus", 1, "GPUs per node (multi-GPU system when nodes=1)")
		cells  = flag.Int("n", 1<<18, "cells in the rod (float64)")
		block  = flag.Int("bsize", 1<<14, "cells per block")
		steps  = flag.Int("steps", 8, "diffusion steps")
		cache  = flag.String("cache", "wb", "cache policy: nocache, wt, wb")
		verify = flag.Bool("verify", false, "carry real data and check the result")
	)
	flag.Parse()

	cfg := ompss.Config{
		CachePolicy:      ompss.CachePolicy(*cache),
		NonBlockingCache: true,
		Steal:            true,
		SlaveToSlave:     true,
		Validate:         *verify,
	}
	if *nodes > 1 {
		cfg.Cluster = ompss.GPUCluster(*nodes)
	} else {
		cfg.Cluster = ompss.MultiGPUSystem(*gpus)
	}

	p := apps.HeatParams{N: *cells, BSize: *block, Steps: *steps}
	res, err := apps.HeatOmpSs(cfg, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heat n=%d bsize=%d steps=%d: %s\n", *cells, *block, *steps, res)
	if *verify {
		want := fmt.Sprintf("sum=%.6f", apps.HeatSerialSum(p))
		status := "OK"
		if res.Check != want {
			status = fmt.Sprintf("MISMATCH (serial %s)", want)
		}
		fmt.Printf("verify: %s %s\n", res.Check, status)
	}
}
