// Reduction demonstrates the reduction clause (the paper's Section VII
// future work, implemented by this runtime): a dot product whose partial
// sums accumulate concurrently into per-GPU private copies, combined by
// the runtime before the result is read.
//
//	go run ./examples/reduction -gpus 4 -n 8388608
package main

import (
	"flag"
	"fmt"
	"log"
	"time"
	"unsafe"

	"github.com/bsc-repro/ompss"
	"github.com/bsc-repro/ompss/internal/hw"
	"github.com/bsc-repro/ompss/internal/memspace"
)

func f32(b []byte) []float32 {
	if len(b) < 4 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// dotChunk computes the dot product of one chunk of x and y and adds it
// into acc[0].
type dotChunk struct {
	x, y, acc ompss.Region
}

func (w dotChunk) Name() string { return "dot" }

func (w dotChunk) GPUCost(spec hw.GPUSpec) time.Duration {
	n := float64(w.x.Size) / 4
	t := 2 * n / spec.EffectiveFlops()
	if m := float64(w.x.Size+w.y.Size) / spec.MemBandwidth; m > t {
		t = m
	}
	return spec.KernelLaunchOverhead + time.Duration(t*1e9)
}

func (w dotChunk) CPUCost(spec hw.NodeSpec) time.Duration {
	return time.Duration(2 * float64(w.x.Size) / 4 / spec.CPUFlops * 1e9)
}

func (w dotChunk) Run(store *memspace.Store) {
	if store == nil {
		return
	}
	x, y := f32(store.Bytes(w.x)), f32(store.Bytes(w.y))
	acc := f32(store.Bytes(w.acc))
	var s float32
	for i := range x {
		s += x[i] * y[i]
	}
	acc[0] += s
}

func main() {
	var (
		gpus   = flag.Int("gpus", 4, "GPUs in the node")
		n      = flag.Int("n", 1<<23, "vector elements")
		chunks = flag.Int("chunks", 16, "reduction tasks")
	)
	flag.Parse()
	per := *n / *chunks

	rt := ompss.New(ompss.Config{Cluster: ompss.MultiGPUSystem(*gpus), Validate: true})
	stats, err := rt.Run(func(ctx *ompss.Context) {
		acc := ctx.Alloc(16)
		ctx.InitSeq(acc, nil)
		var want float64
		for c := 0; c < *chunks; c++ {
			x := ctx.Alloc(uint64(per) * 4)
			y := ctx.Alloc(uint64(per) * 4)
			val := float32(c%5 + 1)
			ctx.InitSeq(x, func(b []byte) {
				v := f32(b)
				for i := range v {
					v[i] = val
				}
			})
			ctx.InitSeq(y, func(b []byte) {
				v := f32(b)
				for i := range v {
					v[i] = 2
				}
			})
			want += float64(val) * 2 * float64(per)
			// The reduction clause: no ordering between the chunk tasks.
			ctx.Task(dotChunk{x: x, y: y, acc: acc},
				ompss.Target(ompss.CUDA), ompss.In(x, y), ompss.Reduction(acc, ompss.SumFloat32))
		}
		ctx.TaskWait()
		got := f32(ctx.HostBytes(acc))[0]
		fmt.Printf("dot = %v (want %v), virtual time %v\n", got, want, ctx.Now())
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d reduction tasks over %d GPUs, %d partial combines (writebacks: %d)\n",
		*chunks, *gpus, stats.Writebacks, stats.Writebacks)
}
