// Stream runs the paper's Figure 2 program — the STREAM benchmark as OmpSs
// tasks over blocked arrays — on a configurable simulated machine:
//
//	go run ./examples/stream -gpus 4 -cache wb
//	go run ./examples/stream -nodes 8
//	go run ./examples/stream -verify
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/bsc-repro/ompss"
	"github.com/bsc-repro/ompss/internal/apps"
)

func main() {
	var (
		nodes  = flag.Int("nodes", 1, "cluster nodes (1 = single machine)")
		gpus   = flag.Int("gpus", 1, "GPUs per node (multi-GPU system when nodes=1)")
		elems  = flag.Int("n", 1<<22, "elements per array (float64)")
		block  = flag.Int("bsize", 1<<19, "elements per block")
		ntimes = flag.Int("ntimes", 10, "benchmark repetitions")
		cache  = flag.String("cache", "wb", "cache policy: nocache, wt, wb")
		verify = flag.Bool("verify", false, "carry real data and check the result")
	)
	flag.Parse()

	cfg := ompss.Config{
		CachePolicy:      ompss.CachePolicy(*cache),
		NonBlockingCache: true,
		Steal:            true,
		SlaveToSlave:     true,
		Validate:         *verify,
	}
	if *nodes > 1 {
		cfg.Cluster = ompss.GPUCluster(*nodes)
	} else {
		cfg.Cluster = ompss.MultiGPUSystem(*gpus)
	}

	p := apps.StreamParams{N: *elems, BSize: *block, NTimes: *ntimes, Scalar: 3}
	res, err := apps.StreamOmpSs(cfg, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream n=%d bsize=%d ntimes=%d: %s\n", *elems, *block, *ntimes, res)
	if *verify {
		want := fmt.Sprintf("a-sum=%.1f", apps.StreamSerialASum(p.N, p.NTimes, p.Scalar))
		status := "OK"
		if res.Check != want {
			status = fmt.Sprintf("MISMATCH (serial %s)", want)
		}
		fmt.Printf("verify: %s %s\n", res.Check, status)
	}
}
