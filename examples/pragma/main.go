// Pragma runs the paper's Figure 2 STREAM program from its actual
// annotated-C source: the mercurium front end parses the directives and
// turns each call into a runtime task, the way the paper's
// source-to-source compiler does. Only the kernel bodies are supplied in
// Go (they are user-provided in the paper too).
//
//	go run ./examples/pragma
package main

import (
	"fmt"
	"log"

	"github.com/bsc-repro/ompss"
	"github.com/bsc-repro/ompss/internal/kernels"
	"github.com/bsc-repro/ompss/internal/mercurium"
	"github.com/bsc-repro/ompss/internal/task"
)

// source is the paper's Figure 2 annotation, as the C programmer wrote it.
const source = `
#pragma omp target device(cuda) copy_deps
#pragma omp task input([N] a) output([N] c)
void copy(double *a, double *c, int N);

#pragma omp target device(cuda) copy_deps
#pragma omp task input([N] c) output([N] b)
void scale(double *b, double *c, double scalar, int N);

#pragma omp target device(cuda) copy_deps
#pragma omp task input([N] a, [N] b) output([N] c)
void add(double *a, double *b, double *c, int N);

#pragma omp target device(cuda) copy_deps
#pragma omp task input([N] b, [N] c) output([N] a)
void triad(double *a, double *b, double *c, double scalar, int N);
`

func main() {
	const (
		n      = 1 << 22 // elements per array
		bsize  = 1 << 19 // elements per block
		ntimes = 10
		scalar = 3.0
	)
	prog := mercurium.MustParse(source)
	fmt.Printf("parsed %d task declarations: %v\n", len(prog.Order), prog.Order)

	rt := ompss.New(ompss.Config{Cluster: ompss.MultiGPUSystem(4)})
	stats, err := rt.Run(func(ctx *ompss.Context) {
		inst, err := prog.Bind(ctx, map[string]mercurium.Kernel{
			"copy": func(a mercurium.Args) task.Work {
				return kernels.StreamCopy{A: a.Region("a"), C: a.Region("c")}
			},
			"scale": func(a mercurium.Args) task.Work {
				return kernels.StreamScale{C: a.Region("c"), B: a.Region("b"), Scalar: a.Float("scalar")}
			},
			"add": func(a mercurium.Args) task.Work {
				return kernels.StreamAdd{A: a.Region("a"), B: a.Region("b"), C: a.Region("c")}
			},
			"triad": func(a mercurium.Args) task.Work {
				return kernels.StreamTriad{B: a.Region("b"), C: a.Region("c"), A: a.Region("a"), Scalar: a.Float("scalar")}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		// The stream() driver of Figure 2, blocked loops and all.
		nb := n / bsize
		alloc := func() []ompss.Region {
			blocks := make([]ompss.Region, nb)
			for i := range blocks {
				blocks[i] = ctx.Alloc(bsize * 8)
				ctx.InitSeq(blocks[i], nil)
			}
			return blocks
		}
		a, b, c := alloc(), alloc(), alloc()
		start := ctx.Now()
		for k := 0; k < ntimes; k++ {
			for j := 0; j < nb; j++ {
				inst.MustCall("copy", a[j], c[j], bsize)
			}
			for j := 0; j < nb; j++ {
				inst.MustCall("scale", b[j], c[j], scalar, bsize)
			}
			for j := 0; j < nb; j++ {
				inst.MustCall("add", a[j], b[j], c[j], bsize)
			}
			for j := 0; j < nb; j++ {
				inst.MustCall("triad", a[j], b[j], c[j], scalar, bsize)
			}
		}
		inst.TaskWaitNoflush()
		elapsed := (ctx.Now() - start).Seconds()
		moved := float64(ntimes) * 10 * 8 * float64(n)
		fmt.Printf("STREAM via pragmas: %.1f GB/s on 4 GPUs (%.4fs virtual)\n", moved/elapsed/1e9, elapsed)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tasks: %d, H2D: %d MB, D2H: %d MB\n", stats.TasksCUDA, stats.BytesH2D>>20, stats.BytesD2H>>20)
}
