// Perlin runs the paper's Perlin-noise image filter as OmpSs tasks, in the
// Flush variant (frame copied to host memory after each step) or the
// NoFlush variant (frames stay on the GPUs):
//
//	go run ./examples/perlin -gpus 4 -steps 64
//	go run ./examples/perlin -nodes 4 -flush
//	go run ./examples/perlin -verify
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/bsc-repro/ompss"
	"github.com/bsc-repro/ompss/internal/apps"
)

func main() {
	var (
		nodes  = flag.Int("nodes", 1, "cluster nodes (1 = single machine)")
		gpus   = flag.Int("gpus", 1, "GPUs per node (multi-GPU system when nodes=1)")
		width  = flag.Int("width", 1024, "image width")
		height = flag.Int("height", 1024, "image height")
		rows   = flag.Int("rows", 64, "rows per block (one task per block per step)")
		steps  = flag.Int("steps", 32, "filter steps")
		flush  = flag.Bool("flush", false, "copy the frame back to the host after every step")
		verify = flag.Bool("verify", false, "carry real data and check the result")
	)
	flag.Parse()

	cfg := ompss.Config{
		NonBlockingCache: true,
		Steal:            true,
		SlaveToSlave:     true,
		Validate:         *verify,
	}
	if *nodes > 1 {
		cfg.Cluster = ompss.GPUCluster(*nodes)
	} else {
		cfg.Cluster = ompss.MultiGPUSystem(*gpus)
	}

	p := apps.PerlinParams{Width: *width, Height: *height, RowsPerBlock: *rows, Steps: *steps, Flush: *flush}
	res, err := apps.PerlinOmpSs(cfg, p)
	if err != nil {
		log.Fatal(err)
	}
	variant := "noflush"
	if *flush {
		variant = "flush"
	}
	fmt.Printf("perlin %dx%d steps=%d (%s): %s\n", *width, *height, *steps, variant, res)
	if *verify {
		want := fmt.Sprintf("img-sum=%.3f", apps.PerlinSerialSum(p))
		status := "OK"
		if res.Check != want {
			status = fmt.Sprintf("MISMATCH (serial %s)", want)
		}
		fmt.Printf("verify: %s %s\n", res.Check, status)
	}
}
